package script

import "fmt"

// parser builds the AST from a token stream using recursive descent with a
// precedence-climbing expression core.
type parser struct {
	toks []token
	pos  int
}

// parse parses a full PipeScript program.
func parse(src string) (*program, error) {
	toks, err := lexAll(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	prog := &program{}
	for !p.atEOF() {
		s, err := p.statement()
		if err != nil {
			return nil, err
		}
		prog.stmts = append(prog.stmts, s)
	}
	return prog, nil
}

func (p *parser) cur() token  { return p.toks[p.pos] }
func (p *parser) atEOF() bool { return p.cur().kind == tokenEOF }

func (p *parser) advance() token {
	t := p.cur()
	if t.kind != tokenEOF {
		p.pos++
	}
	return t
}

func (p *parser) isPunct(s string) bool {
	t := p.cur()
	return t.kind == tokenPunct && t.text == s
}

func (p *parser) isKeyword(s string) bool {
	t := p.cur()
	return t.kind == tokenKeyword && t.text == s
}

func (p *parser) acceptPunct(s string) bool {
	if p.isPunct(s) {
		p.advance()
		return true
	}
	return false
}

func (p *parser) acceptKeyword(s string) bool {
	if p.isKeyword(s) {
		p.advance()
		return true
	}
	return false
}

func (p *parser) expectPunct(s string) error {
	if !p.acceptPunct(s) {
		return p.errorf("expected %q, found %s", s, p.cur())
	}
	return nil
}

func (p *parser) errorf(format string, args ...any) error {
	return &SyntaxError{Pos: p.cur().pos, Msg: fmt.Sprintf(format, args...)}
}

// ---- Statements ----

func (p *parser) statement() (stmt, error) {
	t := p.cur()
	switch {
	case p.isPunct("{"):
		return p.block()
	case p.isPunct(";"):
		p.advance()
		return &blockStmt{pos: t.pos}, nil
	case t.kind == tokenKeyword:
		switch t.text {
		case "var", "let", "const":
			s, err := p.declaration()
			if err != nil {
				return nil, err
			}
			p.acceptPunct(";")
			return s, nil
		case "function":
			return p.functionDecl()
		case "if":
			return p.ifStatement()
		case "while":
			return p.whileStatement()
		case "for":
			return p.forStatement()
		case "return":
			p.advance()
			s := &returnStmt{pos: t.pos}
			if !p.isPunct(";") && !p.isPunct("}") && !p.atEOF() {
				v, err := p.expression()
				if err != nil {
					return nil, err
				}
				s.value = v
			}
			p.acceptPunct(";")
			return s, nil
		case "break":
			p.advance()
			p.acceptPunct(";")
			return &breakStmt{pos: t.pos}, nil
		case "continue":
			p.advance()
			p.acceptPunct(";")
			return &continueStmt{pos: t.pos}, nil
		case "throw":
			p.advance()
			v, err := p.expression()
			if err != nil {
				return nil, err
			}
			p.acceptPunct(";")
			return &throwStmt{pos: t.pos, value: v}, nil
		case "try":
			return p.tryStatement()
		case "switch":
			return p.switchStatement()
		}
	}
	// Expression statement.
	x, err := p.expression()
	if err != nil {
		return nil, err
	}
	p.acceptPunct(";")
	return &exprStmt{pos: t.pos, x: x}, nil
}

func (p *parser) block() (*blockStmt, error) {
	pos := p.cur().pos
	if err := p.expectPunct("{"); err != nil {
		return nil, err
	}
	b := &blockStmt{pos: pos}
	for !p.isPunct("}") {
		if p.atEOF() {
			return nil, p.errorf("unterminated block")
		}
		s, err := p.statement()
		if err != nil {
			return nil, err
		}
		b.stmts = append(b.stmts, s)
	}
	p.advance() // consume }
	return b, nil
}

func (p *parser) declaration() (stmt, error) {
	kw := p.advance() // var/let/const
	name := p.cur()
	if name.kind != tokenIdent {
		return nil, p.errorf("expected identifier after %s, found %s", kw.text, name)
	}
	p.advance()
	d := &declStmt{pos: kw.pos, kind: kw.text, name: name.text, constant: kw.text == "const"}
	if p.acceptPunct("=") {
		v, err := p.expression()
		if err != nil {
			return nil, err
		}
		d.init = v
	} else if d.constant {
		return nil, p.errorf("const %q requires an initializer", name.text)
	}
	return d, nil
}

func (p *parser) functionDecl() (stmt, error) {
	pos := p.cur().pos
	p.advance() // function
	name := p.cur()
	if name.kind != tokenIdent {
		return nil, p.errorf("expected function name, found %s", name)
	}
	p.advance()
	fn, err := p.functionRest(pos, name.text)
	if err != nil {
		return nil, err
	}
	return &funcDecl{pos: pos, fn: fn}, nil
}

// functionRest parses "(params) { body }".
func (p *parser) functionRest(pos Position, name string) (*funcLit, error) {
	if err := p.expectPunct("("); err != nil {
		return nil, err
	}
	var params []string
	for !p.isPunct(")") {
		t := p.cur()
		if t.kind != tokenIdent {
			return nil, p.errorf("expected parameter name, found %s", t)
		}
		p.advance()
		params = append(params, t.text)
		if !p.acceptPunct(",") {
			break
		}
	}
	if err := p.expectPunct(")"); err != nil {
		return nil, err
	}
	body, err := p.block()
	if err != nil {
		return nil, err
	}
	return &funcLit{pos: pos, name: name, params: params, body: body}, nil
}

func (p *parser) ifStatement() (stmt, error) {
	pos := p.cur().pos
	p.advance() // if
	if err := p.expectPunct("("); err != nil {
		return nil, err
	}
	cond, err := p.expression()
	if err != nil {
		return nil, err
	}
	if err := p.expectPunct(")"); err != nil {
		return nil, err
	}
	then, err := p.statement()
	if err != nil {
		return nil, err
	}
	s := &ifStmt{pos: pos, cond: cond, then: then}
	if p.acceptKeyword("else") {
		e, err := p.statement()
		if err != nil {
			return nil, err
		}
		s.elsE = e
	}
	return s, nil
}

func (p *parser) whileStatement() (stmt, error) {
	pos := p.cur().pos
	p.advance() // while
	if err := p.expectPunct("("); err != nil {
		return nil, err
	}
	cond, err := p.expression()
	if err != nil {
		return nil, err
	}
	if err := p.expectPunct(")"); err != nil {
		return nil, err
	}
	body, err := p.statement()
	if err != nil {
		return nil, err
	}
	return &whileStmt{pos: pos, cond: cond, body: body}, nil
}

func (p *parser) forStatement() (stmt, error) {
	pos := p.cur().pos
	p.advance() // for
	if err := p.expectPunct("("); err != nil {
		return nil, err
	}

	// for-of: "for (x of expr)" or "for (let x of expr)".
	save := p.pos
	if s, ok, err := p.tryForOf(pos); err != nil {
		return nil, err
	} else if ok {
		return s, nil
	}
	p.pos = save

	f := &forStmt{pos: pos}
	if !p.isPunct(";") {
		if p.isKeyword("var") || p.isKeyword("let") || p.isKeyword("const") {
			d, err := p.declaration()
			if err != nil {
				return nil, err
			}
			f.init = d
		} else {
			x, err := p.expression()
			if err != nil {
				return nil, err
			}
			f.init = &exprStmt{pos: x.position(), x: x}
		}
	}
	if err := p.expectPunct(";"); err != nil {
		return nil, err
	}
	if !p.isPunct(";") {
		c, err := p.expression()
		if err != nil {
			return nil, err
		}
		f.cond = c
	}
	if err := p.expectPunct(";"); err != nil {
		return nil, err
	}
	if !p.isPunct(")") {
		x, err := p.expression()
		if err != nil {
			return nil, err
		}
		f.post = x
	}
	if err := p.expectPunct(")"); err != nil {
		return nil, err
	}
	body, err := p.statement()
	if err != nil {
		return nil, err
	}
	f.body = body
	return f, nil
}

// tryForOf attempts to parse the for-of header; ok=false means the caller
// should rewind and parse a classic for.
func (p *parser) tryForOf(pos Position) (stmt, bool, error) {
	p.acceptKeyword("var")
	p.acceptKeyword("let")
	p.acceptKeyword("const")
	name := p.cur()
	if name.kind != tokenIdent {
		return nil, false, nil
	}
	p.advance()
	if !p.acceptKeyword("of") {
		return nil, false, nil
	}
	iter, err := p.expression()
	if err != nil {
		return nil, false, err
	}
	if err := p.expectPunct(")"); err != nil {
		return nil, false, err
	}
	body, err := p.statement()
	if err != nil {
		return nil, false, err
	}
	return &forOfStmt{pos: pos, varName: name.text, iter: iter, body: body}, true, nil
}

func (p *parser) tryStatement() (stmt, error) {
	pos := p.cur().pos
	p.advance() // try
	body, err := p.block()
	if err != nil {
		return nil, err
	}
	s := &tryStmt{pos: pos, body: body}
	if p.acceptKeyword("catch") {
		if p.acceptPunct("(") {
			name := p.cur()
			if name.kind != tokenIdent {
				return nil, p.errorf("expected catch variable, found %s", name)
			}
			p.advance()
			s.catchVar = name.text
			if err := p.expectPunct(")"); err != nil {
				return nil, err
			}
		}
		c, err := p.block()
		if err != nil {
			return nil, err
		}
		s.catch = c
	}
	if p.acceptKeyword("finally") {
		f, err := p.block()
		if err != nil {
			return nil, err
		}
		s.finally = f
	}
	if s.catch == nil && s.finally == nil {
		return nil, p.errorf("try requires catch or finally")
	}
	return s, nil
}

func (p *parser) switchStatement() (stmt, error) {
	pos := p.cur().pos
	p.advance() // switch
	if err := p.expectPunct("("); err != nil {
		return nil, err
	}
	subject, err := p.expression()
	if err != nil {
		return nil, err
	}
	if err := p.expectPunct(")"); err != nil {
		return nil, err
	}
	if err := p.expectPunct("{"); err != nil {
		return nil, err
	}
	sw := &switchStmt{pos: pos, subject: subject}
	seenDefault := false
	for !p.isPunct("}") {
		if p.atEOF() {
			return nil, p.errorf("unterminated switch")
		}
		switch {
		case p.acceptKeyword("case"):
			v, err := p.expression()
			if err != nil {
				return nil, err
			}
			if err := p.expectPunct(":"); err != nil {
				return nil, err
			}
			body, err := p.caseBody()
			if err != nil {
				return nil, err
			}
			sw.cases = append(sw.cases, switchCase{value: v, body: body})
		case p.acceptKeyword("default"):
			if seenDefault {
				return nil, p.errorf("duplicate default clause")
			}
			seenDefault = true
			if err := p.expectPunct(":"); err != nil {
				return nil, err
			}
			body, err := p.caseBody()
			if err != nil {
				return nil, err
			}
			sw.defaultBody = body
		default:
			return nil, p.errorf("expected case or default, found %s", p.cur())
		}
	}
	p.advance() // }
	return sw, nil
}

// caseBody parses statements until the next case/default label or the
// closing brace.
func (p *parser) caseBody() ([]stmt, error) {
	var body []stmt
	for !p.isPunct("}") && !p.isKeyword("case") && !p.isKeyword("default") {
		if p.atEOF() {
			return nil, p.errorf("unterminated switch case")
		}
		s, err := p.statement()
		if err != nil {
			return nil, err
		}
		body = append(body, s)
	}
	return body, nil
}

// ---- Expressions (precedence climbing) ----

// binaryPrec maps operators to binding power; higher binds tighter.
var binaryPrec = map[string]int{
	"||": 1,
	"&&": 2,
	"==": 3, "!=": 3, "===": 3, "!==": 3,
	"<": 4, "<=": 4, ">": 4, ">=": 4,
	"+": 5, "-": 5,
	"*": 6, "/": 6, "%": 6,
}

func (p *parser) expression() (expr, error) { return p.assignment() }

func (p *parser) assignment() (expr, error) {
	lhs, err := p.ternary()
	if err != nil {
		return nil, err
	}
	for _, op := range []string{"=", "+=", "-=", "*=", "/=", "%="} {
		if p.isPunct(op) {
			pos := p.cur().pos
			if !isAssignable(lhs) {
				return nil, p.errorf("invalid assignment target")
			}
			p.advance()
			rhs, err := p.assignment()
			if err != nil {
				return nil, err
			}
			return &assignExpr{pos: pos, op: op, target: lhs, value: rhs}, nil
		}
	}
	return lhs, nil
}

func isAssignable(e expr) bool {
	switch e.(type) {
	case *identExpr, *memberExpr, *indexExpr:
		return true
	default:
		return false
	}
}

func (p *parser) ternary() (expr, error) {
	cond, err := p.binary(1)
	if err != nil {
		return nil, err
	}
	if !p.isPunct("?") {
		return cond, nil
	}
	pos := p.cur().pos
	p.advance()
	then, err := p.assignment()
	if err != nil {
		return nil, err
	}
	if err := p.expectPunct(":"); err != nil {
		return nil, err
	}
	elsE, err := p.assignment()
	if err != nil {
		return nil, err
	}
	return &condExpr{pos: pos, cond: cond, then: then, elsE: elsE}, nil
}

func (p *parser) binary(minPrec int) (expr, error) {
	lhs, err := p.unary()
	if err != nil {
		return nil, err
	}
	for {
		t := p.cur()
		if t.kind != tokenPunct {
			return lhs, nil
		}
		prec, ok := binaryPrec[t.text]
		if !ok || prec < minPrec {
			return lhs, nil
		}
		p.advance()
		rhs, err := p.binary(prec + 1)
		if err != nil {
			return nil, err
		}
		op := t.text
		// Treat strict equality as equality: PipeScript has no coercion.
		if op == "===" {
			op = "=="
		}
		if op == "!==" {
			op = "!="
		}
		if op == "&&" || op == "||" {
			lhs = &logicalExpr{pos: t.pos, op: op, x: lhs, y: rhs}
		} else {
			lhs = &binaryExpr{pos: t.pos, op: op, x: lhs, y: rhs}
		}
	}
}

func (p *parser) unary() (expr, error) {
	t := p.cur()
	switch {
	case p.isPunct("-") || p.isPunct("!"):
		p.advance()
		x, err := p.unary()
		if err != nil {
			return nil, err
		}
		return &unaryExpr{pos: t.pos, op: t.text, x: x}, nil
	case p.isPunct("+"):
		p.advance()
		return p.unary()
	case p.isKeyword("typeof"):
		p.advance()
		x, err := p.unary()
		if err != nil {
			return nil, err
		}
		return &unaryExpr{pos: t.pos, op: "typeof", x: x}, nil
	case p.isPunct("++") || p.isPunct("--"):
		p.advance()
		x, err := p.unary()
		if err != nil {
			return nil, err
		}
		if !isAssignable(x) {
			return nil, p.errorf("invalid %s target", t.text)
		}
		return &updateExpr{pos: t.pos, op: t.text, target: x}, nil
	}
	return p.postfix()
}

func (p *parser) postfix() (expr, error) {
	x, err := p.callOrMember()
	if err != nil {
		return nil, err
	}
	if p.isPunct("++") || p.isPunct("--") {
		t := p.advance()
		if !isAssignable(x) {
			return nil, p.errorf("invalid %s target", t.text)
		}
		return &updateExpr{pos: t.pos, op: t.text, target: x, postfix: true}, nil
	}
	return x, nil
}

func (p *parser) callOrMember() (expr, error) {
	x, err := p.primary()
	if err != nil {
		return nil, err
	}
	for {
		t := p.cur()
		switch {
		case p.isPunct("("):
			p.advance()
			var args []expr
			for !p.isPunct(")") {
				a, err := p.assignment()
				if err != nil {
					return nil, err
				}
				args = append(args, a)
				if !p.acceptPunct(",") {
					break
				}
			}
			if err := p.expectPunct(")"); err != nil {
				return nil, err
			}
			x = &callExpr{pos: t.pos, callee: x, args: args}
		case p.isPunct("."):
			p.advance()
			name := p.cur()
			if name.kind != tokenIdent && name.kind != tokenKeyword {
				return nil, p.errorf("expected member name, found %s", name)
			}
			p.advance()
			x = &memberExpr{pos: t.pos, obj: x, name: name.text}
		case p.isPunct("["):
			p.advance()
			idx, err := p.expression()
			if err != nil {
				return nil, err
			}
			if err := p.expectPunct("]"); err != nil {
				return nil, err
			}
			x = &indexExpr{pos: t.pos, obj: x, index: idx}
		default:
			return x, nil
		}
	}
}

func (p *parser) primary() (expr, error) {
	t := p.cur()
	switch t.kind {
	case tokenNumber:
		p.advance()
		return &numberLit{pos: t.pos, value: t.num}, nil
	case tokenString:
		p.advance()
		return &stringLit{pos: t.pos, value: t.text}, nil
	case tokenIdent:
		p.advance()
		return &identExpr{pos: t.pos, name: t.text}, nil
	case tokenKeyword:
		switch t.text {
		case "true", "false":
			p.advance()
			return &boolLit{pos: t.pos, value: t.text == "true"}, nil
		case "null", "undefined":
			p.advance()
			return &nullLit{pos: t.pos}, nil
		case "function":
			p.advance()
			name := ""
			if p.cur().kind == tokenIdent {
				name = p.advance().text
			}
			return p.functionRest(t.pos, name)
		}
	case tokenPunct:
		switch t.text {
		case "(":
			p.advance()
			x, err := p.expression()
			if err != nil {
				return nil, err
			}
			if err := p.expectPunct(")"); err != nil {
				return nil, err
			}
			return x, nil
		case "[":
			p.advance()
			a := &arrayLit{pos: t.pos}
			for !p.isPunct("]") {
				e, err := p.assignment()
				if err != nil {
					return nil, err
				}
				a.elems = append(a.elems, e)
				if !p.acceptPunct(",") {
					break
				}
			}
			if err := p.expectPunct("]"); err != nil {
				return nil, err
			}
			return a, nil
		case "{":
			return p.objectLiteral()
		}
	}
	return nil, p.errorf("unexpected %s", t)
}

func (p *parser) objectLiteral() (expr, error) {
	pos := p.cur().pos
	p.advance() // {
	o := &objectLit{pos: pos}
	for !p.isPunct("}") {
		t := p.cur()
		var key string
		switch t.kind {
		case tokenIdent, tokenKeyword, tokenString:
			key = t.text
		case tokenNumber:
			key = t.text
		default:
			return nil, p.errorf("expected object key, found %s", t)
		}
		p.advance()
		if err := p.expectPunct(":"); err != nil {
			return nil, err
		}
		v, err := p.assignment()
		if err != nil {
			return nil, err
		}
		o.fields = append(o.fields, objectField{key: key, value: v})
		if !p.acceptPunct(",") {
			break
		}
	}
	if err := p.expectPunct("}"); err != nil {
		return nil, err
	}
	return o, nil
}
