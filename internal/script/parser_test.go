package script

import (
	"strings"
	"testing"
)

func TestOperatorPrecedenceMatrix(t *testing.T) {
	cases := map[string]float64{
		"2 + 3 * 4 - 1":           13,
		"2 * 3 % 4":               2,
		"10 - 4 - 3":              3, // left associative
		"100 / 10 / 2":            5,
		"2 + 8 / 4":               4,
		"-2 * -3":                 6,
		"(1 + 2) * (3 + 4)":       21,
		"1 + (true ? 10 : 20)":    11,
		"2 * (1 < 2 ? 5 : 7) + 1": 11,
	}
	for src, want := range cases {
		if got := evalNum(t, src); got != want {
			t.Errorf("Eval(%q) = %v, want %v", src, got, want)
		}
	}
}

func TestComparisonChainsViaLogic(t *testing.T) {
	cases := map[string]bool{
		"1 < 2 == true":            true,
		"!(3 < 2) && (2 <= 2)":     true,
		"1 + 1 == 2 && 2 + 2 == 4": true,
		"false || false || true":   true,
		"true && true && false":    false,
	}
	for src, want := range cases {
		if got := evalVal(t, src); got != want {
			t.Errorf("Eval(%q) = %v, want %v", src, got, want)
		}
	}
}

func TestAssignmentIsExpression(t *testing.T) {
	src := `
		var a = 0; var b = 0;
		b = (a = 5) + 1;
		"" + a + b
	`
	if got := evalVal(t, src); got != "56" {
		t.Errorf("chained assignment = %v", got)
	}
}

func TestNestedFunctionsAndShadowing(t *testing.T) {
	src := `
		var x = "outer";
		function wrap() {
			var x = "inner";
			function read() { return x; }
			return read();
		}
		wrap() + ":" + x
	`
	if got := evalVal(t, src); got != "inner:outer" {
		t.Errorf("shadowing = %v", got)
	}
}

func TestClosureCapturesVariableNotValue(t *testing.T) {
	src := `
		var n = 1;
		function get() { return n; }
		n = 42;
		get()
	`
	if got := evalNum(t, src); got != 42 {
		t.Errorf("closure capture = %v, want 42 (by reference)", got)
	}
}

func TestFunctionExpressionImmediatelyInvoked(t *testing.T) {
	if got := evalNum(t, "(function(a, b) { return a * b; })(6, 7)"); got != 42 {
		t.Errorf("IIFE = %v", got)
	}
}

func TestNamedFunctionExpression(t *testing.T) {
	src := `
		var f = function fact(n) { return n < 2 ? 1 : n * 2; };
		f(5)
	`
	if got := evalNum(t, src); got != 10 {
		t.Errorf("named function expression = %v", got)
	}
}

func TestObjectLiteralKeyForms(t *testing.T) {
	src := `
		var o = {plain: 1, "quoted key": 2, 3: 4, function: 5};
		o.plain + o["quoted key"] + o["3"] + o["function"]
	`
	if got := evalNum(t, src); got != 12 {
		t.Errorf("key forms = %v", got)
	}
}

func TestKeywordAsMemberName(t *testing.T) {
	if got := evalNum(t, `var o = {return: 7}; o.return`); got != 7 {
		t.Errorf("keyword member = %v", got)
	}
}

func TestDeeplyNestedStructures(t *testing.T) {
	src := `
		var cfg = {
			pipeline: {
				modules: [
					{name: "pose", services: ["pose_detector"]},
					{name: "display", services: []}
				]
			}
		};
		cfg.pipeline.modules[0].services[0] + ":" + str(len(cfg.pipeline.modules))
	`
	if got := evalVal(t, src); got != "pose_detector:2" {
		t.Errorf("nested access = %v", got)
	}
}

func TestWhileWithComplexCondition(t *testing.T) {
	src := `
		var i = 0; var sum = 0;
		while (i < 100 && sum < 20) { sum += i; i++; }
		"" + i + "/" + sum
	`
	// 0+1+2+3+4+5+6 = 21 >= 20 after i=7
	if got := evalVal(t, src); got != "7/21" {
		t.Errorf("complex while = %v", got)
	}
}

func TestForOfNestedBreak(t *testing.T) {
	src := `
		var found = "";
		for (row of [[1,2],[3,4],[5,6]]) {
			for (v of row) {
				if (v == 4) { found = "got4"; break; }
			}
			if (found != "") { break; }
		}
		found
	`
	if got := evalVal(t, src); got != "got4" {
		t.Errorf("nested for-of break = %v", got)
	}
}

func TestReturnInsideLoopInsideFunction(t *testing.T) {
	src := `
		function firstEven(arr) {
			for (x of arr) {
				if (x % 2 == 0) { return x; }
			}
			return null;
		}
		str(firstEven([3, 5, 8, 9])) + str(firstEven([1]))
	`
	if got := evalVal(t, src); got != "8null" {
		t.Errorf("return in loop = %v", got)
	}
}

func TestThrowInsideNestedCallsCaught(t *testing.T) {
	src := `
		function a() { b(); }
		function b() { c(); }
		function c() { throw "deep"; }
		var out = "";
		try { a(); } catch (e) { out = "caught " + e; }
		out
	`
	if got := evalVal(t, src); got != "caught deep" {
		t.Errorf("deep throw = %v", got)
	}
}

func TestRethrow(t *testing.T) {
	src := `
		var log = "";
		try {
			try { throw "x"; }
			catch (e) { log += "inner;"; throw e; }
		} catch (e2) { log += "outer:" + e2; }
		log
	`
	if got := evalVal(t, src); got != "inner;outer:x" {
		t.Errorf("rethrow = %v", got)
	}
}

func TestCatchWithoutBinding(t *testing.T) {
	src := `
		var ok = false;
		try { throw 1; } catch { ok = true; }
		ok
	`
	if got := evalVal(t, src); got != true {
		t.Errorf("bindingless catch = %v", got)
	}
}

func TestBreakOutsideLoopIsError(t *testing.T) {
	for _, src := range []string{"break;", "continue;", "function f() { break; } f()"} {
		if _, err := NewContext().Eval(src); err == nil {
			t.Errorf("Eval(%q) succeeded, want control-flow error", src)
		}
	}
}

func TestReturnAtTopLevelIsError(t *testing.T) {
	if _, err := NewContext().Eval("return 5;"); err == nil {
		t.Error("top-level return accepted")
	}
}

func TestSemicolonsLargelyOptional(t *testing.T) {
	src := `
		var a = 1
		var b = 2
		function f(x) { return x + 1 }
		f(a) + b
	`
	if got := evalNum(t, src); got != 4 {
		t.Errorf("semicolon-free = %v", got)
	}
}

func TestUnicodeStringsAndEscapes(t *testing.T) {
	cases := map[string]string{
		`"héllo"`: "héllo",
		`"Aé"`:    "Aé",
		`'日本'`:    "日本",
	}
	for src, want := range cases {
		if got := evalVal(t, src); got != want {
			t.Errorf("Eval(%s) = %q, want %q", src, got, want)
		}
	}
}

func TestIdentifiersWithDollarAndUnderscore(t *testing.T) {
	if got := evalNum(t, "var _x$2 = 9; _x$2"); got != 9 {
		t.Errorf("ident charset = %v", got)
	}
}

func TestLongChainedMemberCalls(t *testing.T) {
	src := `
		var data = {get: function() { return {inner: function() { return 99; }}; }};
		data.get().inner()
	`
	if got := evalNum(t, src); got != 99 {
		t.Errorf("chained calls = %v", got)
	}
}

func TestEmptyProgramAndWhitespace(t *testing.T) {
	for _, src := range []string{"", "   \n\t  ", "// only a comment", "/* block */"} {
		if _, err := NewContext().Eval(src); err != nil {
			t.Errorf("Eval(%q): %v", src, err)
		}
	}
}

func TestLoadThenEvalSharesGlobals(t *testing.T) {
	c := NewContext()
	if err := c.Load("var base = 10; function add(n) { return base + n; }"); err != nil {
		t.Fatalf("Load: %v", err)
	}
	v, err := c.Eval("add(5)")
	if err != nil || v != float64(15) {
		t.Errorf("Eval after Load = %v, %v", v, err)
	}
}

func TestSyntaxErrorMessagesAreHelpful(t *testing.T) {
	_, err := NewContext().Eval("if (x {}")
	if err == nil || !strings.Contains(err.Error(), "expected") {
		t.Errorf("error = %v, want 'expected ...'", err)
	}
}

func TestVeryLongArrayLiteral(t *testing.T) {
	var b strings.Builder
	b.WriteString("len([")
	for i := 0; i < 2000; i++ {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString("1")
	}
	b.WriteString("])")
	if got := evalNum(t, b.String()); got != 2000 {
		t.Errorf("long array len = %v", got)
	}
}

func TestSwitchBasic(t *testing.T) {
	src := `
		function grade(activity) {
			switch (activity) {
			case "squat": return "legs";
			case "clap":
			case "wave": return "arms";
			default: return "unknown";
			}
		}
		grade("squat") + "/" + grade("clap") + "/" + grade("wave") + "/" + grade("rest")
	`
	if got := evalVal(t, src); got != "legs/arms/arms/unknown" {
		t.Errorf("switch = %v", got)
	}
}

func TestSwitchFallThrough(t *testing.T) {
	src := `
		var log = "";
		switch (2) {
		case 1: log += "one;";
		case 2: log += "two;";
		case 3: log += "three;";
		}
		log
	`
	if got := evalVal(t, src); got != "two;three;" {
		t.Errorf("fall-through = %v", got)
	}
}

func TestSwitchBreakStops(t *testing.T) {
	src := `
		var log = "";
		switch ("b") {
		case "a": log += "a"; break;
		case "b": log += "b"; break;
		case "c": log += "c"; break;
		}
		log
	`
	if got := evalVal(t, src); got != "b" {
		t.Errorf("switch break = %v", got)
	}
}

func TestSwitchNoMatchNoDefault(t *testing.T) {
	src := `
		var ran = false;
		switch (99) { case 1: ran = true; }
		ran
	`
	if got := evalVal(t, src); got != false {
		t.Errorf("no-match switch ran a case: %v", got)
	}
}

func TestSwitchStrictEquality(t *testing.T) {
	// "1" does not match 1 — PipeScript has no coercion.
	src := `
		var out = "none";
		switch ("1") { case 1: out = "number"; default: out = "default"; }
		out
	`
	if got := evalVal(t, src); got != "default" {
		t.Errorf("strict switch = %v", got)
	}
}

func TestSwitchInsideLoop(t *testing.T) {
	// break inside switch terminates the switch, not the loop.
	src := `
		var count = 0;
		for (var i = 0; i < 5; i++) {
			switch (i % 2) {
			case 0: count += 10; break;
			case 1: count += 1; break;
			}
		}
		count
	`
	if got := evalNum(t, src); got != 32 {
		t.Errorf("switch in loop = %v, want 32", got)
	}
}

func TestSwitchReturnFromFunction(t *testing.T) {
	src := `
		function f(x) {
			switch (x) { case 1: return "one"; }
			return "other";
		}
		f(1) + f(2)
	`
	if got := evalVal(t, src); got != "oneother" {
		t.Errorf("switch return = %v", got)
	}
}

func TestSwitchSyntaxErrors(t *testing.T) {
	cases := []string{
		`switch (1) { case 1 }`,            // missing colon
		`switch (1) { default: default: }`, // duplicate default
		`switch (1) { banana: 1; }`,        // not case/default
		`switch (1) { case 1:`,             // unterminated
		`switch 1 { case 1: }`,             // missing parens
	}
	for _, src := range cases {
		if _, err := NewContext().Eval(src); err == nil {
			t.Errorf("Eval(%q) succeeded, want syntax error", src)
		}
	}
}
