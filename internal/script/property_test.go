package script

import (
	"fmt"
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

// exprNode is a random arithmetic expression tree used for differential
// testing: the same tree is rendered to PipeScript source and evaluated
// natively in Go; both results must agree.
type exprTree struct {
	op          byte // '+', '-', '*', 'n' (leaf), 'm' (min), 'x' (max)
	left, right *exprTree
	value       float64
}

func genTree(rng *rand.Rand, depth int) *exprTree {
	if depth <= 0 || rng.Intn(3) == 0 {
		// Small integer leaves keep float arithmetic exact.
		return &exprTree{op: 'n', value: float64(rng.Intn(41) - 20)}
	}
	ops := []byte{'+', '-', '*', 'm', 'x'}
	return &exprTree{
		op:    ops[rng.Intn(len(ops))],
		left:  genTree(rng, depth-1),
		right: genTree(rng, depth-1),
	}
}

func (t *exprTree) render() string {
	switch t.op {
	case 'n':
		if t.value < 0 {
			return fmt.Sprintf("(%g)", t.value)
		}
		return fmt.Sprintf("%g", t.value)
	case 'm':
		return fmt.Sprintf("min(%s, %s)", t.left.render(), t.right.render())
	case 'x':
		return fmt.Sprintf("max(%s, %s)", t.left.render(), t.right.render())
	default:
		return fmt.Sprintf("(%s %c %s)", t.left.render(), t.op, t.right.render())
	}
}

func (t *exprTree) eval() float64 {
	switch t.op {
	case 'n':
		return t.value
	case '+':
		return t.left.eval() + t.right.eval()
	case '-':
		return t.left.eval() - t.right.eval()
	case '*':
		return t.left.eval() * t.right.eval()
	case 'm':
		return math.Min(t.left.eval(), t.right.eval())
	case 'x':
		return math.Max(t.left.eval(), t.right.eval())
	default:
		panic("unreachable")
	}
}

func TestDifferentialArithmetic(t *testing.T) {
	// Property: PipeScript evaluates randomly generated arithmetic trees
	// identically to Go.
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tree := genTree(rng, 5)
		want := tree.eval()
		got, err := NewContext().Eval(tree.render())
		if err != nil {
			t.Logf("seed %d: %q -> error %v", seed, tree.render(), err)
			return false
		}
		n, ok := got.(float64)
		if !ok {
			return false
		}
		return n == want || math.Abs(n-want) < 1e-9
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestDifferentialComparisons(t *testing.T) {
	// Property: comparison of two generated trees agrees with Go.
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := genTree(rng, 3)
		b := genTree(rng, 3)
		ops := []string{"<", "<=", ">", ">=", "==", "!="}
		op := ops[rng.Intn(len(ops))]
		src := fmt.Sprintf("(%s) %s (%s)", a.render(), op, b.render())
		got, err := NewContext().Eval(src)
		if err != nil {
			return false
		}
		av, bv := a.eval(), b.eval()
		var want bool
		switch op {
		case "<":
			want = av < bv
		case "<=":
			want = av <= bv
		case ">":
			want = av > bv
		case ">=":
			want = av >= bv
		case "==":
			want = av == bv
		case "!=":
			want = av != bv
		}
		return got == want
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestParserNeverPanicsOnRandomInput(t *testing.T) {
	// Property: arbitrary byte soup produces an error or a value, never a
	// panic or a hang (the step budget bounds runaway evaluation).
	check := func(raw []byte) (ok bool) {
		defer func() {
			if r := recover(); r != nil {
				t.Logf("panic on input %q: %v", raw, r)
				ok = false
			}
		}()
		c := NewContext()
		c.SetMaxSteps(100_000)
		_, _ = c.Eval(string(raw))
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestParserNeverPanicsOnMutatedPrograms(t *testing.T) {
	// Mutate a valid program by deleting random spans; parsing must stay
	// panic-free.
	base := `
		var total = 0;
		function f(a, b) {
			var out = [];
			for (var i = 0; i < a; i++) {
				if (i % 2 == 0) { push(out, i * b); } else { continue; }
			}
			return out;
		}
		for (x of f(10, 3)) { total += x; }
		try { throw {code: total}; } catch (e) { total = e.code; }
		total
	`
	check := func(seed int64) (ok bool) {
		defer func() {
			if r := recover(); r != nil {
				ok = false
			}
		}()
		rng := rand.New(rand.NewSource(seed))
		src := base
		for k := 0; k < 3; k++ {
			if len(src) < 4 {
				break
			}
			i := rng.Intn(len(src) - 1)
			j := i + 1 + rng.Intn(minInt(20, len(src)-i-1))
			src = src[:i] + src[j:]
		}
		c := NewContext()
		c.SetMaxSteps(100_000)
		_, _ = c.Eval(src)
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func TestStringConcatAssociativity(t *testing.T) {
	// Property: rendering values through string concatenation in script
	// matches Stringify-based concatenation in Go.
	check := func(parts []int16) bool {
		if len(parts) == 0 {
			return true
		}
		var src strings.Builder
		src.WriteString(`""`)
		var want strings.Builder
		for _, p := range parts {
			fmt.Fprintf(&src, " + (%d)", p)
			fmt.Fprintf(&want, "%d", p)
		}
		got, err := NewContext().Eval(src.String())
		return err == nil && got == want.String()
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestSortedArrayProperty(t *testing.T) {
	// Property: sort() output is a sorted permutation of its input.
	check := func(values []int8) bool {
		c := NewContext()
		arr := &Array{}
		counts := map[float64]int{}
		for _, v := range values {
			arr.Elems = append(arr.Elems, float64(v))
			counts[float64(v)]++
		}
		c.BindValue("input", arr)
		out, err := c.Eval("sort(input)")
		if err != nil {
			return false
		}
		sorted, ok := out.(*Array)
		if !ok || len(sorted.Elems) != len(values) {
			return false
		}
		prev := math.Inf(-1)
		for _, e := range sorted.Elems {
			n, ok := e.(float64)
			if !ok || n < prev {
				return false
			}
			prev = n
			counts[n]--
		}
		for _, c := range counts {
			if c != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
