package script

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestShapeGoldenScripts drives the script-level half of the
// testdata/shapes corpus: standalone .js files whose first line declares
// the PV018 findings they must (and must only) trigger, positioned —
// `// expect: PV018@5` or `// expect: none`. Files without the header are
// include()-targets of the .cfg half (driven from the root package) and
// are skipped here.
func TestShapeGoldenScripts(t *testing.T) {
	files, err := filepath.Glob(filepath.Join("testdata", "shapes", "*.js"))
	if err != nil {
		t.Fatal(err)
	}
	ran := 0
	for _, file := range files {
		data, err := os.ReadFile(file)
		if err != nil {
			t.Fatal(err)
		}
		src := string(data)
		first, _, _ := strings.Cut(src, "\n")
		spec, ok := strings.CutPrefix(strings.TrimSpace(first), "// expect:")
		if !ok {
			continue
		}
		ran++
		t.Run(filepath.Base(file), func(t *testing.T) {
			want := map[string]bool{}
			for _, entry := range strings.Fields(spec) {
				if entry != "none" {
					want[entry] = true
				}
			}
			got := map[string]bool{}
			rep := Analyze(src, Options{})
			for _, d := range rep.Diagnostics {
				if d.Code == CodeShapeUnknown {
					got[fmt.Sprintf("%s@%d", d.Code, d.Pos.Line)] = true
					if d.Severity != SeverityWarning {
						t.Errorf("%s must be a warning, got %v", d.Code, d.Severity)
					}
				}
			}
			for entry := range want {
				if !got[entry] {
					t.Errorf("expected %s, not reported; diagnostics: %v", entry, rep.Diagnostics)
				}
			}
			for entry := range got {
				if !want[entry] {
					t.Errorf("unexpected %s; diagnostics: %v", entry, rep.Diagnostics)
				}
			}
		})
	}
	if ran < 2 {
		t.Fatalf("script-level shape corpus too small: %d files", ran)
	}
}
