package script

import (
	"sort"
	"strconv"
)

// The pipetype inference pass (see shapes.go for the lattice and report
// types). Produced shapes come from a flow-insensitive per-function local
// environment iterated to fixpoint, with widening for module globals that
// escape; consumed shapes come from a demand walk of event_received with
// expected-kind contexts passed top-down and alias tracking for the
// message parameter.

type shapeCtx struct {
	sigs    map[string]Signature
	funcs   map[string]*funcLit
	globals map[string]*Shape
	extra   map[string]bool

	retShape map[string]*Shape
	retState map[string]int // 0 unseen, 1 in progress, 2 done
	envMemo  map[*funcLit]envResult

	consumeMemo  map[string]*consumeFrag
	consumeState map[string]bool
}

type envResult struct {
	env    map[string]*Shape
	locals map[string]bool
}

// shapePass runs pipetype over a parsed module. Mirrors costPass's shape:
// top-level function table (last declaration wins), then per-scope
// analysis. It reports PV018 at emit sites whose payload degrades to top
// or an open object.
func shapePass(prog *program, sigs map[string]Signature, globals []string) (ShapeReport, []Diagnostic) {
	ctx := &shapeCtx{
		sigs:         sigs,
		funcs:        make(map[string]*funcLit),
		globals:      make(map[string]*Shape),
		extra:        make(map[string]bool),
		retShape:     make(map[string]*Shape),
		retState:     make(map[string]int),
		envMemo:      make(map[*funcLit]envResult),
		consumeMemo:  make(map[string]*consumeFrag),
		consumeState: make(map[string]bool),
	}
	for _, g := range globals {
		ctx.extra[g] = true
	}
	for _, s := range prog.stmts {
		switch st := s.(type) {
		case *funcDecl:
			ctx.funcs[st.fn.name] = st.fn
		case *declStmt:
			if fl, ok := st.init.(*funcLit); ok {
				ctx.funcs[st.name] = fl
			}
		}
	}

	// Module globals: a global keeps its declaration shape only when the
	// module never re-assigns it, never passes it to a call, and never
	// writes through it — otherwise it widens to top.
	widened := make(map[string]bool)
	for _, s := range prog.stmts {
		scanWidens(s, widened)
	}
	for _, s := range prog.stmts {
		st, ok := s.(*declStmt)
		if !ok {
			continue
		}
		if _, isFunc := st.init.(*funcLit); isFunc {
			continue
		}
		switch {
		case widened[st.name]:
			ctx.globals[st.name] = topShape()
		case st.init == nil:
			ctx.globals[st.name] = kindShape(KindNull)
		default:
			ctx.globals[st.name] = ctx.evalShape(st.init, nil, nil)
		}
	}

	// Emit collection: the load scope (top-level statements) plus every
	// top-level function body, each under its own stabilized environment.
	var sites []EmitSite
	var diags []Diagnostic
	warned := make(map[Position]bool)
	col := &emitCollector{ctx: ctx, sites: &sites, diags: &diags, warned: warned}
	load := col.scope(nil, nil)
	for _, s := range prog.stmts {
		switch st := s.(type) {
		case *funcDecl:
			// Walked as its own scope below.
		case *declStmt:
			if _, isFunc := st.init.(*funcLit); !isFunc {
				load.stmt(s)
			}
		default:
			load.stmt(s)
		}
	}
	for _, s := range prog.stmts {
		var fl *funcLit
		switch st := s.(type) {
		case *funcDecl:
			fl = st.fn
		case *declStmt:
			if f, ok := st.init.(*funcLit); ok {
				fl = f
			}
		}
		if fl == nil {
			continue
		}
		env, locals := ctx.fixpointEnv(fl)
		col.scope(env, locals).block(fl.body)
	}
	sort.SliceStable(sites, func(i, j int) bool {
		if sites[i].Pos.Line != sites[j].Pos.Line {
			return sites[i].Pos.Line < sites[j].Pos.Line
		}
		return sites[i].Pos.Col < sites[j].Pos.Col
	})

	rep := ShapeReport{
		Emits:        make(map[string]*Shape),
		EmitSites:    sites,
		ServiceReads: collectServiceReads(ctx, prog),
	}
	for _, s := range sites {
		if s.Target == "" {
			rep.DynamicEmit = rep.DynamicEmit.Join(s.Payload)
			continue
		}
		rep.Emits[s.Target] = rep.Emits[s.Target].Join(s.Payload)
	}

	if fl, ok := ctx.funcs["event_received"]; ok {
		rep.Consumed.HasHandler = true
		rep.Consumed.Fields = make(map[string]FieldUse)
		if len(fl.params) > 0 {
			frag := ctx.consumeFunc(fl, 0, "")
			rep.Consumed.Dynamic = frag.dynamic
			rep.Consumed.Fields = frag.fields
		}
	}
	return rep, diags
}

// scanWidens records names that are assignment targets, call arguments, or
// the root of a member/index write anywhere in the program (including
// nested function bodies).
func scanWidens(s stmt, into map[string]bool) {
	walkStmtExprs(s, func(e expr) {
		switch ex := e.(type) {
		case *assignExpr:
			widenTarget(ex.target, into)
		case *updateExpr:
			widenTarget(ex.target, into)
		case *callExpr:
			for _, a := range ex.args {
				if id, ok := a.(*identExpr); ok {
					into[id.name] = true
				}
			}
		}
	})
}

func widenTarget(t expr, into map[string]bool) {
	if id, ok := t.(*identExpr); ok {
		into[id.name] = true
		return
	}
	if root, ok := rootIdentName(t); ok {
		into[root] = true
	}
}

// rootIdentName chases member/index chains to their base identifier.
func rootIdentName(e expr) (string, bool) {
	for {
		switch ex := e.(type) {
		case *identExpr:
			return ex.name, true
		case *memberExpr:
			e = ex.obj
		case *indexExpr:
			e = ex.obj
		default:
			return "", false
		}
	}
}

// walkStmtExprs calls fn on every expression under s, including inside
// nested function literal bodies.
func walkStmtExprs(s stmt, fn func(expr)) {
	switch st := s.(type) {
	case nil:
	case *exprStmt:
		walkExprTree(st.x, fn)
	case *declStmt:
		walkExprTree(st.init, fn)
	case *blockStmt:
		for _, inner := range st.stmts {
			walkStmtExprs(inner, fn)
		}
	case *ifStmt:
		walkExprTree(st.cond, fn)
		walkStmtExprs(st.then, fn)
		walkStmtExprs(st.elsE, fn)
	case *whileStmt:
		walkExprTree(st.cond, fn)
		walkStmtExprs(st.body, fn)
	case *forStmt:
		walkStmtExprs(st.init, fn)
		walkExprTree(st.cond, fn)
		walkExprTree(st.post, fn)
		walkStmtExprs(st.body, fn)
	case *forOfStmt:
		walkExprTree(st.iter, fn)
		walkStmtExprs(st.body, fn)
	case *returnStmt:
		walkExprTree(st.value, fn)
	case *throwStmt:
		walkExprTree(st.value, fn)
	case *tryStmt:
		walkStmtExprs(st.body, fn)
		if st.catch != nil {
			walkStmtExprs(st.catch, fn)
		}
		if st.finally != nil {
			walkStmtExprs(st.finally, fn)
		}
	case *switchStmt:
		walkExprTree(st.subject, fn)
		for _, c := range st.cases {
			walkExprTree(c.value, fn)
			for _, inner := range c.body {
				walkStmtExprs(inner, fn)
			}
		}
		for _, inner := range st.defaultBody {
			walkStmtExprs(inner, fn)
		}
	case *funcDecl:
		walkStmtExprs(st.fn.body, fn)
	}
}

// walkExprTree calls fn on e and every sub-expression, descending into
// function literal bodies.
func walkExprTree(e expr, fn func(expr)) {
	if e == nil {
		return
	}
	fn(e)
	switch ex := e.(type) {
	case *arrayLit:
		for _, el := range ex.elems {
			walkExprTree(el, fn)
		}
	case *objectLit:
		for _, f := range ex.fields {
			walkExprTree(f.value, fn)
		}
	case *funcLit:
		walkStmtExprs(ex.body, fn)
	case *unaryExpr:
		walkExprTree(ex.x, fn)
	case *binaryExpr:
		walkExprTree(ex.x, fn)
		walkExprTree(ex.y, fn)
	case *logicalExpr:
		walkExprTree(ex.x, fn)
		walkExprTree(ex.y, fn)
	case *condExpr:
		walkExprTree(ex.cond, fn)
		walkExprTree(ex.then, fn)
		walkExprTree(ex.elsE, fn)
	case *assignExpr:
		walkExprTree(ex.target, fn)
		walkExprTree(ex.value, fn)
	case *updateExpr:
		walkExprTree(ex.target, fn)
	case *callExpr:
		walkExprTree(ex.callee, fn)
		for _, a := range ex.args {
			walkExprTree(a, fn)
		}
	case *memberExpr:
		walkExprTree(ex.obj, fn)
	case *indexExpr:
		walkExprTree(ex.obj, fn)
		walkExprTree(ex.index, fn)
	}
}

// ---- produced side: local environments ----

// fixpointEnv computes the stabilized flow-insensitive local environment of
// a function: every local maps to the join of every shape assigned to it
// anywhere in the body (declarations with no initializer contribute null;
// parameters are top). Results are memoized per function literal.
func (c *shapeCtx) fixpointEnv(fl *funcLit) (map[string]*Shape, map[string]bool) {
	if r, ok := c.envMemo[fl]; ok {
		return r.env, r.locals
	}
	locals := make(map[string]bool)
	collectDeclaredNames(fl.body.stmts, locals)
	env := make(map[string]*Shape)
	for _, pn := range fl.params {
		locals[pn] = true
		env[pn] = topShape()
	}
	p := &envPass{ctx: c, locals: locals, env: env}
	stable := false
	for i := 0; i < maxEnvPasses && !stable; i++ {
		p.changed = false
		for _, s := range fl.body.stmts {
			p.stmt(s)
		}
		stable = !p.changed
	}
	if !stable {
		// Did not converge under the pass cap: widen everything so the
		// result stays an over-approximation.
		for n := range env {
			env[n] = topShape()
		}
	}
	c.envMemo[fl] = envResult{env: env, locals: locals}
	return env, locals
}

type envPass struct {
	ctx     *shapeCtx
	locals  map[string]bool
	env     map[string]*Shape
	changed bool
}

func (p *envPass) set(name string, s *Shape) {
	if !p.locals[name] {
		return
	}
	old := p.env[name]
	nw := old.Join(s)
	if old.String() != nw.String() {
		p.env[name] = nw
		p.changed = true
	}
}

func (p *envPass) stmt(s stmt) {
	switch st := s.(type) {
	case nil:
	case *exprStmt:
		p.expr(st.x)
	case *declStmt:
		if st.init == nil {
			p.set(st.name, kindShape(KindNull))
			return
		}
		if _, isFunc := st.init.(*funcLit); isFunc {
			p.set(st.name, kindShape(KindFunction))
		} else {
			p.set(st.name, p.ctx.evalShape(st.init, p.env, p.locals))
		}
		p.expr(st.init)
	case *blockStmt:
		for _, inner := range st.stmts {
			p.stmt(inner)
		}
	case *ifStmt:
		p.expr(st.cond)
		p.stmt(st.then)
		p.stmt(st.elsE)
	case *whileStmt:
		p.expr(st.cond)
		p.stmt(st.body)
	case *forStmt:
		p.stmt(st.init)
		p.expr(st.cond)
		p.expr(st.post)
		p.stmt(st.body)
	case *forOfStmt:
		p.set(st.varName, elemShape(p.ctx.evalShape(st.iter, p.env, p.locals)))
		p.expr(st.iter)
		p.stmt(st.body)
	case *returnStmt:
		p.expr(st.value)
	case *throwStmt:
		p.expr(st.value)
	case *tryStmt:
		p.stmt(st.body)
		if st.catch != nil {
			if st.catchVar != "" {
				p.set(st.catchVar, topShape())
			}
			p.stmt(st.catch)
		}
		if st.finally != nil {
			p.stmt(st.finally)
		}
	case *switchStmt:
		p.expr(st.subject)
		for _, cs := range st.cases {
			p.expr(cs.value)
			for _, inner := range cs.body {
				p.stmt(inner)
			}
		}
		for _, inner := range st.defaultBody {
			p.stmt(inner)
		}
	case *funcDecl:
		// A closure may write the enclosing function's locals.
		p.stmt(st.fn.body)
	}
}

func (p *envPass) expr(e expr) {
	walkExprTree(e, func(x expr) {
		switch ex := x.(type) {
		case *assignExpr:
			var val *Shape
			switch ex.op {
			case "=":
				val = p.ctx.evalShape(ex.value, p.env, p.locals)
			case "+=":
				val = kindShape(KindNumber | KindString)
			default:
				val = kindShape(KindNumber)
			}
			p.assignTarget(ex.target, val)
		case *updateExpr:
			p.assignTarget(ex.target, kindShape(KindNumber))
		}
	})
}

func (p *envPass) assignTarget(t expr, val *Shape) {
	switch tx := t.(type) {
	case *identExpr:
		p.set(tx.name, val)
	case *memberExpr:
		if id, ok := tx.obj.(*identExpr); ok {
			p.set(id.name, &Shape{Kinds: KindObject, Fields: map[string]*Shape{tx.name: val}})
			return
		}
		// A write through a nested path makes the root's field set
		// inexact.
		if root, ok := rootIdentName(tx.obj); ok {
			p.set(root, &Shape{Kinds: KindObject | KindArray, Open: true, Elem: topShape()})
		}
	case *indexExpr:
		if root, ok := rootIdentName(tx.obj); ok {
			p.set(root, &Shape{Kinds: KindObject | KindArray, Open: true, Elem: topShape()})
		}
	}
}

// elemShape is the shape a for-of loop variable takes when iterating s.
func elemShape(s *Shape) *Shape {
	if s == nil || s.Top {
		return topShape()
	}
	var out *Shape
	if s.Kinds&KindArray != 0 {
		if s.Elem != nil {
			out = out.Join(s.Elem)
		} else {
			out = out.Join(kindShape(KindNull))
		}
	}
	if s.Kinds&KindString != 0 {
		out = out.Join(kindShape(KindString))
	}
	if s.Kinds&KindObject != 0 {
		// Iterating an object yields its keys.
		out = out.Join(kindShape(KindString))
	}
	if out == nil {
		return topShape()
	}
	return out
}

// ---- produced side: expression shapes ----

func (c *shapeCtx) evalShape(e expr, env map[string]*Shape, locals map[string]bool) *Shape {
	return c.evalDepth(e, env, locals, 0)
}

// evalDepth computes an over-approximate shape for an expression. depth is
// structural (incremented at object/array nesting only).
func (c *shapeCtx) evalDepth(e expr, env map[string]*Shape, locals map[string]bool, depth int) *Shape {
	switch ex := e.(type) {
	case nil:
		return kindShape(KindNull)
	case *numberLit:
		return kindShape(KindNumber)
	case *stringLit:
		return kindShape(KindString)
	case *boolLit:
		return kindShape(KindBool)
	case *nullLit:
		return kindShape(KindNull)
	case *identExpr:
		if locals != nil && locals[ex.name] {
			if s := env[ex.name]; s != nil {
				return s
			}
			return kindShape(KindNull)
		}
		if s, ok := c.globals[ex.name]; ok {
			return s
		}
		if c.extra[ex.name] {
			return topShape()
		}
		if _, ok := c.funcs[ex.name]; ok {
			return kindShape(KindFunction)
		}
		if _, ok := c.sigs[ex.name]; ok {
			return kindShape(KindFunction)
		}
		return topShape()
	case *objectLit:
		if depth >= maxShapeDepth {
			return topShape()
		}
		s := &Shape{Kinds: KindObject, Fields: make(map[string]*Shape, len(ex.fields))}
		for _, f := range ex.fields {
			s.Fields[f.key] = s.Fields[f.key].Join(c.evalDepth(f.value, env, locals, depth+1))
		}
		return s
	case *arrayLit:
		if depth >= maxShapeDepth {
			return topShape()
		}
		s := &Shape{Kinds: KindArray}
		for _, el := range ex.elems {
			s.Elem = s.Elem.Join(c.evalDepth(el, env, locals, depth+1))
		}
		return s
	case *funcLit:
		return kindShape(KindFunction)
	case *unaryExpr:
		switch ex.op {
		case "!":
			return kindShape(KindBool)
		case "-", "+":
			return kindShape(KindNumber)
		}
		return topShape()
	case *binaryExpr:
		switch ex.op {
		case "+":
			return kindShape(KindNumber | KindString)
		case "-", "*", "/", "%":
			return kindShape(KindNumber)
		case "<", "<=", ">", ">=", "==", "!=", "===", "!==":
			return kindShape(KindBool)
		}
		return topShape()
	case *logicalExpr:
		return c.evalDepth(ex.x, env, locals, depth).Join(c.evalDepth(ex.y, env, locals, depth))
	case *condExpr:
		return c.evalDepth(ex.then, env, locals, depth).Join(c.evalDepth(ex.elsE, env, locals, depth))
	case *assignExpr:
		switch ex.op {
		case "=":
			return c.evalDepth(ex.value, env, locals, depth)
		case "+=":
			return kindShape(KindNumber | KindString)
		}
		return kindShape(KindNumber)
	case *updateExpr:
		return kindShape(KindNumber)
	case *callExpr:
		return c.callShape(ex, env, locals)
	case *memberExpr:
		return fieldShape(c.evalDepth(ex.obj, env, locals, depth), ex.name)
	case *indexExpr:
		return indexShape(c.evalDepth(ex.obj, env, locals, depth))
	}
	return topShape()
}

func (c *shapeCtx) callShape(ex *callExpr, env map[string]*Shape, locals map[string]bool) *Shape {
	id, ok := ex.callee.(*identExpr)
	if !ok {
		return topShape()
	}
	if locals != nil && locals[id.name] {
		return topShape()
	}
	if _, isGlobal := c.globals[id.name]; isGlobal {
		return topShape()
	}
	if fl, found := c.funcs[id.name]; found {
		return c.returnShape(id.name, fl)
	}
	switch id.name {
	case "call_service":
		return topShape()
	case "call_module":
		return kindShape(KindNull)
	}
	if _, found := c.sigs[id.name]; found {
		if k, known := builtinReturnKinds[id.name]; known {
			return kindShape(k)
		}
		return topShape()
	}
	return topShape()
}

// fieldShape reads a field off an object shape. A present field may still
// be absent at runtime (fields are a may-union), so null joins in.
func fieldShape(obj *Shape, name string) *Shape {
	if obj == nil || obj.Top {
		return topShape()
	}
	if obj.Kinds&KindObject == 0 {
		return topShape()
	}
	if f, ok := obj.Fields[name]; ok {
		return f.Join(kindShape(KindNull))
	}
	if obj.Open || obj.Kinds&^KindObject != 0 {
		return topShape()
	}
	return kindShape(KindNull)
}

func indexShape(obj *Shape) *Shape {
	if obj == nil || obj.Top || obj.Kinds&KindObject != 0 {
		return topShape()
	}
	var out *Shape
	if obj.Kinds&KindArray != 0 {
		out = out.Join(obj.Elem).Join(kindShape(KindNull))
	}
	if obj.Kinds&KindString != 0 {
		out = out.Join(kindShape(KindString))
	}
	if out == nil {
		return topShape()
	}
	return out
}

// returnShape computes a function's return shape, memoized with recursion
// detection (recursion widens to top).
func (c *shapeCtx) returnShape(name string, fl *funcLit) *Shape {
	switch c.retState[name] {
	case 1:
		return topShape()
	case 2:
		return c.retShape[name]
	}
	c.retState[name] = 1
	env, locals := c.fixpointEnv(fl)
	var ret *Shape
	collectReturns(fl.body, func(r *returnStmt) {
		if r.value == nil {
			ret = ret.Join(kindShape(KindNull))
		} else {
			ret = ret.Join(c.evalShape(r.value, env, locals))
		}
	})
	// Falling off the end returns null.
	ret = ret.Join(kindShape(KindNull))
	c.retShape[name] = ret
	c.retState[name] = 2
	return ret
}

// collectReturns visits the return statements of one function body without
// descending into nested function literals (their returns are their own).
func collectReturns(b *blockStmt, fn func(*returnStmt)) {
	var walk func(s stmt)
	walk = func(s stmt) {
		switch st := s.(type) {
		case nil:
		case *returnStmt:
			fn(st)
		case *blockStmt:
			for _, inner := range st.stmts {
				walk(inner)
			}
		case *ifStmt:
			walk(st.then)
			walk(st.elsE)
		case *whileStmt:
			walk(st.body)
		case *forStmt:
			walk(st.init)
			walk(st.body)
		case *forOfStmt:
			walk(st.body)
		case *tryStmt:
			walk(st.body)
			if st.catch != nil {
				walk(st.catch)
			}
			if st.finally != nil {
				walk(st.finally)
			}
		case *switchStmt:
			for _, cs := range st.cases {
				for _, inner := range cs.body {
					walk(inner)
				}
			}
			for _, inner := range st.defaultBody {
				walk(inner)
			}
		}
	}
	for _, s := range b.stmts {
		walk(s)
	}
}

// ---- emit collection ----

type emitCollector struct {
	ctx    *shapeCtx
	sites  *[]EmitSite
	diags  *[]Diagnostic
	warned map[Position]bool
}

type emitScope struct {
	col    *emitCollector
	env    map[string]*Shape
	locals map[string]bool
}

func (col *emitCollector) scope(env map[string]*Shape, locals map[string]bool) *emitScope {
	return &emitScope{col: col, env: env, locals: locals}
}

// nested builds the scope for a function literal nested inside this one:
// its parameters and declarations shadow the enclosing bindings and are
// unknown (top) at analysis time.
func (sc *emitScope) nested(fl *funcLit) *emitScope {
	shadowed := make(map[string]bool)
	for _, pn := range fl.params {
		shadowed[pn] = true
	}
	collectDeclaredNames(fl.body.stmts, shadowed)
	env := make(map[string]*Shape, len(sc.env)+len(shadowed))
	locals := make(map[string]bool, len(sc.locals)+len(shadowed))
	for n, v := range sc.env {
		env[n] = v
	}
	for n, v := range sc.locals {
		locals[n] = v
	}
	for n := range shadowed {
		locals[n] = true
		env[n] = topShape()
	}
	return &emitScope{col: sc.col, env: env, locals: locals}
}

func (sc *emitScope) block(b *blockStmt) {
	for _, s := range b.stmts {
		sc.stmt(s)
	}
}

func (sc *emitScope) stmt(s stmt) {
	switch st := s.(type) {
	case nil:
	case *exprStmt:
		sc.expr(st.x)
	case *declStmt:
		sc.expr(st.init)
	case *blockStmt:
		sc.block(st)
	case *ifStmt:
		sc.expr(st.cond)
		sc.stmt(st.then)
		sc.stmt(st.elsE)
	case *whileStmt:
		sc.expr(st.cond)
		sc.stmt(st.body)
	case *forStmt:
		sc.stmt(st.init)
		sc.expr(st.cond)
		sc.expr(st.post)
		sc.stmt(st.body)
	case *forOfStmt:
		sc.expr(st.iter)
		sc.stmt(st.body)
	case *returnStmt:
		sc.expr(st.value)
	case *throwStmt:
		sc.expr(st.value)
	case *tryStmt:
		sc.stmt(st.body)
		if st.catch != nil {
			sc.stmt(st.catch)
		}
		if st.finally != nil {
			sc.stmt(st.finally)
		}
	case *switchStmt:
		sc.expr(st.subject)
		for _, cs := range st.cases {
			sc.expr(cs.value)
			for _, inner := range cs.body {
				sc.stmt(inner)
			}
		}
		for _, inner := range st.defaultBody {
			sc.stmt(inner)
		}
	case *funcDecl:
		sc.nested(st.fn).block(st.fn.body)
	}
}

func (sc *emitScope) expr(e expr) {
	if e == nil {
		return
	}
	switch ex := e.(type) {
	case *funcLit:
		sc.nested(ex).block(ex.body)
		return
	case *callExpr:
		sc.expr(ex.callee)
		for _, a := range ex.args {
			sc.expr(a)
		}
		sc.emit(ex)
		return
	case *arrayLit:
		for _, el := range ex.elems {
			sc.expr(el)
		}
	case *objectLit:
		for _, f := range ex.fields {
			sc.expr(f.value)
		}
	case *unaryExpr:
		sc.expr(ex.x)
	case *binaryExpr:
		sc.expr(ex.x)
		sc.expr(ex.y)
	case *logicalExpr:
		sc.expr(ex.x)
		sc.expr(ex.y)
	case *condExpr:
		sc.expr(ex.cond)
		sc.expr(ex.then)
		sc.expr(ex.elsE)
	case *assignExpr:
		sc.expr(ex.target)
		sc.expr(ex.value)
	case *updateExpr:
		sc.expr(ex.target)
	case *memberExpr:
		sc.expr(ex.obj)
	case *indexExpr:
		sc.expr(ex.obj)
		sc.expr(ex.index)
	}
}

// emit records a call_module site and reports PV018 when the payload shape
// degrades to top or an open object.
func (sc *emitScope) emit(call *callExpr) {
	id, ok := call.callee.(*identExpr)
	if !ok || id.name != "call_module" || len(call.args) == 0 {
		return
	}
	if sc.locals != nil && sc.locals["call_module"] {
		return
	}
	target := ""
	if s, isLit := call.args[0].(*stringLit); isLit {
		target = s.value
	}
	var payload *Shape
	if len(call.args) >= 2 {
		payload = sc.col.ctx.evalShape(call.args[1], sc.env, sc.locals)
	} else {
		// A missing payload delivers an empty body.
		payload = &Shape{Kinds: KindObject, Fields: map[string]*Shape{}}
	}
	*sc.col.sites = append(*sc.col.sites, EmitSite{Target: target, Pos: call.pos, Payload: payload})
	if payload.IsTop() || (payload.Kinds&KindObject != 0 && payload.Open) {
		if !sc.col.warned[call.pos] {
			sc.col.warned[call.pos] = true
			*sc.col.diags = append(*sc.col.diags, Diagnostic{
				Pos:      call.pos,
				Code:     CodeShapeUnknown,
				Severity: SeverityWarning,
				Message:  "call_module payload shape is unknowable (dynamic construction); downstream edge contract checks degrade to any",
			})
		}
	}
}

// ---- consumed side ----

type consumeFrag struct {
	dynamic bool
	fields  map[string]FieldUse
}

// consumeFunc infers which fields of parameter paramIdx a function reads.
// key memoizes interprocedural queries ("" for the entry query); recursion
// degrades to dynamic.
func (c *shapeCtx) consumeFunc(fl *funcLit, paramIdx int, key string) *consumeFrag {
	if key != "" {
		if c.consumeState[key] {
			return &consumeFrag{dynamic: true, fields: map[string]FieldUse{}}
		}
		if f, ok := c.consumeMemo[key]; ok {
			return f
		}
		c.consumeState[key] = true
		defer func() { c.consumeState[key] = false }()
	}
	frag := &consumeFrag{fields: make(map[string]FieldUse)}
	done := func() *consumeFrag {
		if key != "" {
			c.consumeMemo[key] = frag
		}
		return frag
	}
	if paramIdx >= len(fl.params) {
		return done()
	}
	param := fl.params[paramIdx]
	// Re-declaring or re-assigning the message parameter poisons field
	// attribution: degrade to dynamic with no recorded fields rather than
	// risk a false PV015.
	declared := make(map[string]bool)
	collectDeclaredNames(fl.body.stmts, declared)
	if declared[param] || assignsName(fl.body, param) {
		frag.dynamic = true
		return done()
	}
	w := &consumeWalker{ctx: c, frag: frag, aliases: c.aliasSet(fl, param)}
	for _, s := range fl.body.stmts {
		w.stmt(s)
	}
	return done()
}

// assignsName reports whether any assignment or update anywhere under b
// (including nested function bodies) targets the bare identifier name.
func assignsName(b *blockStmt, name string) bool {
	found := false
	walkStmtExprs(b, func(e expr) {
		var t expr
		switch ex := e.(type) {
		case *assignExpr:
			t = ex.target
		case *updateExpr:
			t = ex.target
		default:
			return
		}
		if id, ok := t.(*identExpr); ok && id.name == name {
			found = true
		}
	})
	return found
}

// aliasSet qualifies local names that alias the message parameter: a
// single declaration `var x = <alias>` whose name is never re-assigned and
// never re-declared. Chains (var a = m; var b = a) qualify transitively.
func (c *shapeCtx) aliasSet(fl *funcLit, param string) map[string]bool {
	aliases := map[string]bool{param: true}
	declCount := make(map[string]int)
	type candidate struct{ name, from string }
	var cands []candidate
	var scan func(s stmt)
	scan = func(s stmt) {
		switch st := s.(type) {
		case nil:
		case *declStmt:
			declCount[st.name]++
			if id, ok := st.init.(*identExpr); ok {
				cands = append(cands, candidate{name: st.name, from: id.name})
			}
		case *blockStmt:
			for _, inner := range st.stmts {
				scan(inner)
			}
		case *ifStmt:
			scan(st.then)
			scan(st.elsE)
		case *whileStmt:
			scan(st.body)
		case *forStmt:
			scan(st.init)
			scan(st.body)
		case *forOfStmt:
			declCount[st.varName]++
			scan(st.body)
		case *tryStmt:
			scan(st.body)
			if st.catch != nil {
				if st.catchVar != "" {
					declCount[st.catchVar]++
				}
				scan(st.catch)
			}
			if st.finally != nil {
				scan(st.finally)
			}
		case *switchStmt:
			for _, cs := range st.cases {
				for _, inner := range cs.body {
					scan(inner)
				}
			}
			for _, inner := range st.defaultBody {
				scan(inner)
			}
		case *funcDecl:
			declCount[st.fn.name]++
		}
	}
	for _, s := range fl.body.stmts {
		scan(s)
	}
	for changed := true; changed; {
		changed = false
		for _, cd := range cands {
			if aliases[cd.name] || !aliases[cd.from] {
				continue
			}
			if declCount[cd.name] != 1 || assignsName(fl.body, cd.name) {
				continue
			}
			aliases[cd.name] = true
			changed = true
		}
	}
	return aliases
}

type consumeWalker struct {
	ctx     *shapeCtx
	frag    *consumeFrag
	aliases map[string]bool
}

func (w *consumeWalker) record(field string, want KindSet, pos Position) {
	fu, ok := w.frag.fields[field]
	if !ok {
		w.frag.fields[field] = FieldUse{Pos: pos, Kinds: want}
		return
	}
	fu.Kinds = combineReq(fu.Kinds, want)
	w.frag.fields[field] = fu
}

// combineReq merges two kind requirements for the same field: no-
// constraint defers to the other side; overlapping constraints intersect;
// contradictory constraints fall back to the union (the script itself is
// inconsistent — don't manufacture an edge error from it).
func combineReq(a, b KindSet) KindSet {
	if a == 0 {
		return b
	}
	if b == 0 {
		return a
	}
	if a&b != 0 {
		return a & b
	}
	return a | b
}

func (w *consumeWalker) merge(f *consumeFrag) {
	if f.dynamic {
		w.frag.dynamic = true
	}
	for name, fu := range f.fields {
		w.record(name, fu.Kinds, fu.Pos)
	}
}

// nested walks a function literal defined inside the handler: aliases
// shadowed by its parameters or declarations stop qualifying inside it.
func (w *consumeWalker) nested(fl *funcLit) {
	shadowed := make(map[string]bool)
	for _, pn := range fl.params {
		shadowed[pn] = true
	}
	collectDeclaredNames(fl.body.stmts, shadowed)
	sub := &consumeWalker{ctx: w.ctx, frag: w.frag, aliases: make(map[string]bool, len(w.aliases))}
	for n := range w.aliases {
		if !shadowed[n] {
			sub.aliases[n] = true
		}
	}
	for _, s := range fl.body.stmts {
		sub.stmt(s)
	}
}

func (w *consumeWalker) stmt(s stmt) {
	switch st := s.(type) {
	case nil:
	case *exprStmt:
		w.expr(st.x, 0)
	case *declStmt:
		if st.init == nil {
			return
		}
		if id, ok := st.init.(*identExpr); ok && w.aliases[id.name] && w.aliases[st.name] {
			// A qualified alias declaration is not a wholesale use.
			return
		}
		w.expr(st.init, 0)
	case *blockStmt:
		for _, inner := range st.stmts {
			w.stmt(inner)
		}
	case *ifStmt:
		w.expr(st.cond, 0)
		w.stmt(st.then)
		w.stmt(st.elsE)
	case *whileStmt:
		w.expr(st.cond, 0)
		w.stmt(st.body)
	case *forStmt:
		w.stmt(st.init)
		w.expr(st.cond, 0)
		w.expr(st.post, 0)
		w.stmt(st.body)
	case *forOfStmt:
		if id, ok := st.iter.(*identExpr); ok && w.aliases[id.name] {
			// Iterating the message consumes every field.
			w.frag.dynamic = true
		} else {
			w.expr(st.iter, KindObject|KindArray|KindString)
		}
		w.stmt(st.body)
	case *returnStmt:
		w.expr(st.value, 0)
	case *throwStmt:
		w.expr(st.value, 0)
	case *tryStmt:
		w.stmt(st.body)
		if st.catch != nil {
			w.stmt(st.catch)
		}
		if st.finally != nil {
			w.stmt(st.finally)
		}
	case *switchStmt:
		w.expr(st.subject, 0)
		for _, cs := range st.cases {
			w.expr(cs.value, 0)
			for _, inner := range cs.body {
				w.stmt(inner)
			}
		}
		for _, inner := range st.defaultBody {
			w.stmt(inner)
		}
	case *funcDecl:
		w.nested(st.fn)
	}
}

func (w *consumeWalker) expr(e expr, want KindSet) {
	switch ex := e.(type) {
	case nil, *numberLit, *stringLit, *boolLit, *nullLit:
	case *identExpr:
		if w.aliases[ex.name] {
			// Bare use in an unknown context: the whole message escapes.
			w.frag.dynamic = true
		}
	case *arrayLit:
		for _, el := range ex.elems {
			w.expr(el, 0)
		}
	case *objectLit:
		for _, f := range ex.fields {
			w.expr(f.value, 0)
		}
	case *funcLit:
		w.nested(ex)
	case *unaryExpr:
		switch ex.op {
		case "-", "+":
			w.expr(ex.x, KindNumber)
		default:
			w.expr(ex.x, 0)
		}
	case *binaryExpr:
		switch ex.op {
		case "-", "*", "/", "%":
			w.expr(ex.x, KindNumber)
			w.expr(ex.y, KindNumber)
		case "+", "<", "<=", ">", ">=":
			w.expr(ex.x, KindNumber|KindString)
			w.expr(ex.y, KindNumber|KindString)
		default:
			w.expr(ex.x, 0)
			w.expr(ex.y, 0)
		}
	case *logicalExpr:
		w.expr(ex.x, 0)
		w.expr(ex.y, 0)
	case *condExpr:
		w.expr(ex.cond, 0)
		w.expr(ex.then, want)
		w.expr(ex.elsE, want)
	case *assignExpr:
		w.assign(ex)
	case *updateExpr:
		w.updateTarget(ex.target)
	case *callExpr:
		w.call(ex)
	case *memberExpr:
		if id, ok := ex.obj.(*identExpr); ok && w.aliases[id.name] {
			w.record(ex.name, want, ex.pos)
			return
		}
		w.expr(ex.obj, KindObject)
	case *indexExpr:
		if id, ok := ex.obj.(*identExpr); ok && w.aliases[id.name] {
			if s, isLit := ex.index.(*stringLit); isLit {
				w.record(s.value, want, ex.pos)
			} else {
				w.frag.dynamic = true
				w.expr(ex.index, 0)
			}
			return
		}
		w.expr(ex.obj, KindObject|KindArray|KindString)
		w.expr(ex.index, 0)
	}
}

func (w *consumeWalker) assign(ex *assignExpr) {
	switch t := ex.target.(type) {
	case *identExpr:
		// Writing a local; alias names were already disqualified.
	case *memberExpr:
		if id, ok := t.obj.(*identExpr); ok && w.aliases[id.name] {
			// A pure write adds a field without reading it; compound
			// assignment reads first.
			if ex.op != "=" {
				k := KindNumber
				if ex.op == "+=" {
					k = KindNumber | KindString
				}
				w.record(t.name, k, t.pos)
			}
		} else {
			w.expr(t.obj, KindObject)
		}
	case *indexExpr:
		if id, ok := t.obj.(*identExpr); ok && w.aliases[id.name] {
			if ex.op != "=" {
				if s, isLit := t.index.(*stringLit); isLit {
					w.record(s.value, KindNumber|KindString, t.pos)
				} else {
					w.frag.dynamic = true
				}
			}
			w.expr(t.index, 0)
		} else {
			w.expr(t.obj, KindObject|KindArray|KindString)
			w.expr(t.index, 0)
		}
	}
	w.expr(ex.value, 0)
}

func (w *consumeWalker) updateTarget(t expr) {
	switch tx := t.(type) {
	case *identExpr:
	case *memberExpr:
		if id, ok := tx.obj.(*identExpr); ok && w.aliases[id.name] {
			w.record(tx.name, KindNumber, tx.pos)
			return
		}
		w.expr(tx.obj, KindObject)
	case *indexExpr:
		if id, ok := tx.obj.(*identExpr); ok && w.aliases[id.name] {
			if s, isLit := tx.index.(*stringLit); isLit {
				w.record(s.value, KindNumber, tx.pos)
			} else {
				w.frag.dynamic = true
			}
			return
		}
		w.expr(tx.obj, KindObject|KindArray|KindString)
		w.expr(tx.index, 0)
	}
}

func (w *consumeWalker) call(ex *callExpr) {
	id, isIdent := ex.callee.(*identExpr)
	if !isIdent {
		w.expr(ex.callee, KindFunction)
		for _, a := range ex.args {
			w.argDefault(a)
		}
		return
	}
	// has(message, "field") names a field without consuming the whole
	// message — the idiomatic existence guard.
	if id.name == "has" && len(ex.args) == 2 {
		if aid, ok := ex.args[0].(*identExpr); ok && w.aliases[aid.name] {
			if s, isLit := ex.args[1].(*stringLit); isLit {
				w.record(s.value, 0, ex.pos)
			} else {
				w.frag.dynamic = true
				w.expr(ex.args[1], KindString)
			}
			return
		}
	}
	if fl, ok := w.ctx.funcs[id.name]; ok {
		for i, a := range ex.args {
			if aid, isAlias := a.(*identExpr); isAlias && w.aliases[aid.name] {
				w.merge(w.ctx.consumeFunc(fl, i, id.name+"#"+strconv.Itoa(i)))
				continue
			}
			w.expr(a, 0)
		}
		return
	}
	if sig, ok := w.ctx.sigs[id.name]; ok {
		for i, a := range ex.args {
			if aid, isAlias := a.(*identExpr); isAlias && w.aliases[aid.name] {
				// The whole message escapes into a builtin or host call
				// (call_module, json_encode, keys, ...).
				w.frag.dynamic = true
				continue
			}
			w.expr(a, paramKinds(sig, i))
		}
		return
	}
	for _, a := range ex.args {
		w.argDefault(a)
	}
}

func (w *consumeWalker) argDefault(a expr) {
	if aid, ok := a.(*identExpr); ok && w.aliases[aid.name] {
		w.frag.dynamic = true
		return
	}
	w.expr(a, 0)
}

func paramKinds(sig Signature, i int) KindSet {
	if i < len(sig.Params) {
		return kindsFromType(sig.Params[i].Type)
	}
	if sig.Rest != "" {
		return kindsFromType(sig.Rest)
	}
	return 0
}

// ---- service result reads (documentation) ----

// collectServiceReads records, per literal call_service target, the fields
// read off a variable directly bound to its result.
func collectServiceReads(ctx *shapeCtx, prog *program) map[string][]string {
	out := make(map[string][]string)
	scopes := [][]stmt{prog.stmts}
	for _, fl := range ctx.funcs {
		scopes = append(scopes, fl.body.stmts)
	}
	for _, stmts := range scopes {
		// Variables bound to call_service results in this scope.
		bound := make(map[string]string)
		var scanDecls func(s stmt)
		scanDecls = func(s stmt) {
			switch st := s.(type) {
			case nil:
			case *declStmt:
				if call, ok := st.init.(*callExpr); ok {
					if cid, ok2 := call.callee.(*identExpr); ok2 && cid.name == "call_service" && len(call.args) > 0 {
						if svc, ok3 := call.args[0].(*stringLit); ok3 {
							bound[st.name] = svc.value
						}
					}
				}
			case *blockStmt:
				for _, inner := range st.stmts {
					scanDecls(inner)
				}
			case *ifStmt:
				scanDecls(st.then)
				scanDecls(st.elsE)
			case *whileStmt:
				scanDecls(st.body)
			case *forStmt:
				scanDecls(st.init)
				scanDecls(st.body)
			case *forOfStmt:
				scanDecls(st.body)
			case *tryStmt:
				scanDecls(st.body)
				if st.catch != nil {
					scanDecls(st.catch)
				}
				if st.finally != nil {
					scanDecls(st.finally)
				}
			case *switchStmt:
				for _, cs := range st.cases {
					for _, inner := range cs.body {
						scanDecls(inner)
					}
				}
				for _, inner := range st.defaultBody {
					scanDecls(inner)
				}
			}
		}
		for _, s := range stmts {
			scanDecls(s)
		}
		if len(bound) == 0 {
			continue
		}
		seen := make(map[string]bool)
		for _, s := range stmts {
			walkStmtExprs(s, func(e expr) {
				m, ok := e.(*memberExpr)
				if !ok {
					return
				}
				id, ok := m.obj.(*identExpr)
				if !ok {
					return
				}
				svc, ok := bound[id.name]
				if !ok {
					return
				}
				key := svc + "\x00" + m.name
				if !seen[key] {
					seen[key] = true
					out[svc] = append(out[svc], m.name)
				}
			})
		}
	}
	for svc := range out {
		sort.Strings(out[svc])
	}
	return out
}
