package script

import (
	"sort"
	"strings"
	"sync"
)

// pipetype: interprocedural event-shape inference for PipeScript modules.
//
// The pass infers, per module, (a) the produced shape of every payload the
// module passes to call_module — a lattice of object-field maps, array
// element shapes and scalar kinds, widened at joins and loops — and (b) the
// consumed shape of the event_received handler: which message fields it
// reads and with what kind expectations. internal/core cross-checks these
// along every DAG edge of a pipeline (PV015–PV017); the script layer itself
// reports PV018 when an emitted payload degrades to top (unbounded dynamic
// construction), so downstream edge checks never false-positive.
//
// Design mirrors pipecost (cost.go): the same top-level function table
// (last declaration wins, matching the loader), memoized DFS with in-
// progress states for recursion, and a closed soundness loop — the runtime
// ShapeRecorder observes actual payloads per edge and shape_soundness_test
// asserts inferred ⊇ observed for every shipped module.

// ---- kind lattice ----

// KindSet is a bitset of PipeScript runtime kinds. The zero value means
// "no constraint" on the consumed side and "nothing known" on shapes.
type KindSet uint16

const (
	KindNull KindSet = 1 << iota
	KindBool
	KindNumber
	KindString
	KindObject
	KindArray
	KindFunction
)

func (k KindSet) String() string {
	if k == 0 {
		return "any"
	}
	var parts []string
	for _, e := range []struct {
		bit  KindSet
		name string
	}{
		{KindNull, "null"}, {KindBool, "bool"}, {KindNumber, "number"},
		{KindString, "string"}, {KindObject, "object"}, {KindArray, "array"},
		{KindFunction, "function"},
	} {
		if k&e.bit != 0 {
			parts = append(parts, e.name)
		}
	}
	return strings.Join(parts, "|")
}

// kindsFromType translates a signature Param.Type string ("string|array")
// into a KindSet; "any", "" or an unknown token yield 0 (no constraint).
func kindsFromType(t string) KindSet {
	var k KindSet
	for _, tok := range strings.Split(t, "|") {
		switch strings.TrimSpace(tok) {
		case "null":
			k |= KindNull
		case "bool", "boolean":
			k |= KindBool
		case "number":
			k |= KindNumber
		case "string":
			k |= KindString
		case "object":
			k |= KindObject
		case "array":
			k |= KindArray
		case "function":
			k |= KindFunction
		default:
			return 0
		}
	}
	return k
}

// ---- shape lattice ----

// maxShapeDepth caps structural nesting; anything deeper widens to top.
const maxShapeDepth = 4

// maxEnvPasses caps the flow-insensitive fixpoint; if a handler's local
// environment has not stabilized by then, every local widens to top so the
// result stays an over-approximation.
const maxEnvPasses = 8

// Shape is one point of the event-shape lattice. A nil *Shape is bottom
// (nothing ever flows here); Top subsumes everything. For object kinds,
// Fields is a may-union of the fields seen on any path; Open means the
// field set is inexact (computed keys were written), so absent entries say
// nothing. For array kinds Elem is the join of all element shapes (nil
// when only empty arrays were seen). Shapes are immutable after
// construction — Join always allocates.
type Shape struct {
	Top    bool
	Kinds  KindSet
	Fields map[string]*Shape
	Open   bool
	Elem   *Shape
}

func topShape() *Shape           { return &Shape{Top: true} }
func kindShape(k KindSet) *Shape { return &Shape{Kinds: k} }

// IsTop reports whether the shape is the lattice top.
func (s *Shape) IsTop() bool { return s != nil && s.Top }

// Join returns the least upper bound of two shapes. Either side may be nil
// (bottom). The result shares substructure with the inputs; shapes must be
// treated as immutable.
func (s *Shape) Join(o *Shape) *Shape { return joinDepth(s, o, 0) }

func joinDepth(a, b *Shape, depth int) *Shape {
	if a == nil {
		return b
	}
	if b == nil {
		return a
	}
	if a.Top || b.Top || depth > maxShapeDepth {
		return topShape()
	}
	out := &Shape{Kinds: a.Kinds | b.Kinds, Open: a.Open || b.Open}
	if len(a.Fields)+len(b.Fields) > 0 {
		out.Fields = make(map[string]*Shape, len(a.Fields)+len(b.Fields))
		for f, fs := range a.Fields {
			out.Fields[f] = fs
		}
		for f, fs := range b.Fields {
			out.Fields[f] = joinDepth(out.Fields[f], fs, depth+1)
		}
	}
	out.Elem = joinDepth(a.Elem, b.Elem, depth+1)
	return out
}

// Contains reports whether every value described by o is also described by
// s — the soundness relation the runtime recorder checks (inferred ⊇
// observed).
func (s *Shape) Contains(o *Shape) bool { return containsDepth(s, o, 0) }

func containsDepth(a, b *Shape, depth int) bool {
	if b == nil {
		return true
	}
	if a == nil {
		return false
	}
	if a.Top {
		return true
	}
	if b.Top {
		return false
	}
	if depth > maxShapeDepth {
		return true
	}
	if b.Kinds&^a.Kinds != 0 {
		return false
	}
	if b.Kinds&KindObject != 0 {
		if b.Open && !a.Open {
			return false
		}
		for f, bf := range b.Fields {
			af, ok := a.Fields[f]
			if !ok {
				if !a.Open {
					return false
				}
				continue
			}
			if !containsDepth(af, bf, depth+1) {
				return false
			}
		}
	}
	if b.Kinds&KindArray != 0 && b.Elem != nil {
		if a.Elem == nil || !containsDepth(a.Elem, b.Elem, depth+1) {
			return false
		}
	}
	return true
}

// String renders the shape deterministically (fields sorted); the fixpoint
// uses string equality to detect stabilization, so the rendering must
// reflect every component.
func (s *Shape) String() string {
	if s == nil {
		return "none"
	}
	if s.Top {
		return "any"
	}
	var parts []string
	if s.Kinds&KindNull != 0 {
		parts = append(parts, "null")
	}
	if s.Kinds&KindBool != 0 {
		parts = append(parts, "bool")
	}
	if s.Kinds&KindNumber != 0 {
		parts = append(parts, "number")
	}
	if s.Kinds&KindString != 0 {
		parts = append(parts, "string")
	}
	if s.Kinds&KindObject != 0 {
		keys := make([]string, 0, len(s.Fields))
		for f := range s.Fields {
			keys = append(keys, f)
		}
		sort.Strings(keys)
		var fs []string
		for _, f := range keys {
			fs = append(fs, f+": "+s.Fields[f].String())
		}
		if s.Open {
			fs = append(fs, "...")
		}
		parts = append(parts, "object{"+strings.Join(fs, ", ")+"}")
	}
	if s.Kinds&KindArray != 0 {
		if s.Elem == nil {
			parts = append(parts, "array[]")
		} else {
			parts = append(parts, "array["+s.Elem.String()+"]")
		}
	}
	if s.Kinds&KindFunction != 0 {
		parts = append(parts, "function")
	}
	if len(parts) == 0 {
		return "none"
	}
	return strings.Join(parts, "|")
}

// ---- runtime observation ----

// ShapeOf computes the exact (closed) shape of a runtime value, capped at
// maxShapeDepth like the static side.
func ShapeOf(v Value) *Shape { return shapeOfValue(v, 0) }

func shapeOfValue(v Value, depth int) *Shape {
	if depth > maxShapeDepth {
		return topShape()
	}
	switch x := v.(type) {
	case nil:
		return kindShape(KindNull)
	case bool:
		return kindShape(KindBool)
	case float64:
		return kindShape(KindNumber)
	case string:
		return kindShape(KindString)
	case *Array:
		s := &Shape{Kinds: KindArray}
		for _, e := range x.Elems {
			s.Elem = joinDepth(s.Elem, shapeOfValue(e, depth+1), depth+1)
		}
		return s
	case *Object:
		s := &Shape{Kinds: KindObject, Fields: make(map[string]*Shape, len(x.Fields))}
		for k, e := range x.Fields {
			s.Fields[k] = shapeOfValue(e, depth+1)
		}
		return s
	case *Function, HostFunc:
		return kindShape(KindFunction)
	default:
		return topShape()
	}
}

// ShapeRecorder accumulates observed payload shapes per edge key, joining
// as it goes. Safe for concurrent use — module event loops observe from
// their own goroutines.
type ShapeRecorder struct {
	mu    sync.Mutex
	edges map[string]*Shape
}

// NewShapeRecorder returns an empty recorder.
func NewShapeRecorder() *ShapeRecorder { return &ShapeRecorder{edges: make(map[string]*Shape)} }

// Observe joins the shape of payload into the edge's accumulated shape.
func (r *ShapeRecorder) Observe(edge string, payload Value) {
	s := ShapeOf(payload)
	r.mu.Lock()
	r.edges[edge] = r.edges[edge].Join(s)
	r.mu.Unlock()
}

// Shape returns the accumulated shape for an edge (nil if never observed).
func (r *ShapeRecorder) Shape(edge string) *Shape {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.edges[edge]
}

// Edges returns the observed edge keys, sorted.
func (r *ShapeRecorder) Edges() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]string, 0, len(r.edges))
	for e := range r.edges {
		out = append(out, e)
	}
	sort.Strings(out)
	return out
}

// ---- report ----

// EmitSite is one call_module call site. Target is "" when the module name
// is computed at runtime.
type EmitSite struct {
	Target  string
	Pos     Position
	Payload *Shape
}

// FieldUse records one consumed message field: where it is first read and
// the kinds the uses require (0 = any use is fine).
type FieldUse struct {
	Pos   Position
	Kinds KindSet
}

// ConsumedShape describes what the event_received handler reads from its
// message. Dynamic means the handler also consumes the message wholesale
// (iterates it, re-emits it, hands it to an opaque callee), so Fields is a
// lower bound rather than the full story.
type ConsumedShape struct {
	HasHandler bool
	Dynamic    bool
	Fields     map[string]FieldUse
}

// ShapeReport is the pipetype result for one module.
type ShapeReport struct {
	// Emits joins, per literal call_module target, every payload shape
	// emitted to it.
	Emits map[string]*Shape
	// EmitSites lists each call_module site in source order.
	EmitSites []EmitSite
	// DynamicEmit joins the payloads of sites whose target is computed at
	// runtime; edge checking folds it into every declared edge.
	DynamicEmit *Shape
	// Consumed describes the event_received handler's reads.
	Consumed ConsumedShape
	// ServiceReads documents, per call_service target, which result fields
	// the module reads (best-effort, for docs and tooling).
	ServiceReads map[string][]string
}

// AnalyzeShapes runs only the pipetype shape inference over a module
// source. An unparseable source yields a zero report; deploy-time analysis
// rejects it separately (PV000).
func AnalyzeShapes(src string) ShapeReport {
	prog, err := parse(src)
	if err != nil {
		return ShapeReport{}
	}
	rep, _ := shapePass(prog, CallSignatures(), nil)
	return rep
}

// builtinReturnKinds maps builtins with statically known result kinds;
// anything unlisted returns top.
var builtinReturnKinds = map[string]KindSet{
	"len": KindNumber, "num": KindNumber, "now_ms": KindNumber,
	"abs": KindNumber, "floor": KindNumber, "ceil": KindNumber,
	"round": KindNumber, "sqrt": KindNumber, "exp": KindNumber,
	"sin": KindNumber, "cos": KindNumber, "atan2": KindNumber,
	"pow": KindNumber, "min": KindNumber, "max": KindNumber,
	"index_of": KindNumber,
	"str":      KindString, "substr": KindString, "join": KindString,
	"upper": KindString, "lower": KindString, "trim": KindString,
	"device_name": KindString, "json_encode": KindString,
	"is_nan": KindBool, "has": KindBool, "contains": KindBool,
	"starts_with": KindBool, "ends_with": KindBool,
	"keys": KindArray, "values": KindArray, "split": KindArray,
	"range": KindArray, "concat": KindArray, "reverse": KindArray,
	"sort":   KindArray,
	"slice":  KindArray | KindString,
	"metric": KindNull, "frame_done": KindNull,
}
