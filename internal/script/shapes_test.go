package script

import (
	"strings"
	"testing"
)

func shapesOf(t *testing.T, src string) ShapeReport {
	t.Helper()
	rep := Analyze(src, Options{})
	for _, d := range rep.Diagnostics {
		if d.Severity == SeverityError {
			t.Fatalf("unexpected error diagnostic: %s", d)
		}
	}
	return rep.Shapes
}

func TestShapeEmitLiteralObject(t *testing.T) {
	rep := shapesOf(t, `
function event_received(m) {
    call_module("sink", {frame_ref: m.frame_ref, count: 1, label: "hi"});
}`)
	s := rep.Emits["sink"]
	if s == nil {
		t.Fatal("no emit shape for sink")
	}
	if s.Open || s.IsTop() {
		t.Fatalf("literal emit should be closed, got %s", s)
	}
	if got := s.Fields["count"]; got == nil || got.Kinds != KindNumber {
		t.Errorf("count = %v, want number", got)
	}
	if got := s.Fields["label"]; got == nil || got.Kinds != KindString {
		t.Errorf("label = %v, want string", got)
	}
	if got := s.Fields["frame_ref"]; got == nil || !got.IsTop() {
		t.Errorf("frame_ref = %v, want top (message fields are unknown)", got)
	}
}

func TestShapeEmitBuiltLocal(t *testing.T) {
	rep := shapesOf(t, `
function event_received(m) {
    var out = {a: 1};
    if (m.flag) { out.b = "x"; }
    out.c = m.flag;
    call_module("sink", out);
}`)
	s := rep.Emits["sink"]
	if s == nil || s.Open || s.IsTop() {
		t.Fatalf("built local should stay closed, got %s", s)
	}
	for _, f := range []string{"a", "b", "c"} {
		if s.Fields[f] == nil {
			t.Errorf("field %s missing from %s", f, s)
		}
	}
}

func TestShapeEmitJoinAcrossBranches(t *testing.T) {
	rep := shapesOf(t, `
function event_received(m) {
    if (m.x > 0) {
        call_module("sink", {a: 1});
    } else {
        call_module("sink", {a: "s", b: true});
    }
}`)
	s := rep.Emits["sink"]
	if s == nil {
		t.Fatal("no emit shape")
	}
	if got := s.Fields["a"]; got == nil || got.Kinds != KindNumber|KindString {
		t.Errorf("a = %v, want number|string", got)
	}
	if got := s.Fields["b"]; got == nil || got.Kinds != KindBool {
		t.Errorf("b = %v, want bool", got)
	}
	if len(rep.EmitSites) != 2 {
		t.Errorf("EmitSites = %d, want 2", len(rep.EmitSites))
	}
}

func TestShapeEmitTopIsPV018(t *testing.T) {
	src := `
function event_received(m) {
    call_module("sink", m);
}`
	rep := Analyze(src, Options{})
	found := false
	for _, d := range rep.Diagnostics {
		if d.Code == CodeShapeUnknown {
			found = true
			if d.Severity != SeverityWarning {
				t.Errorf("PV018 severity = %v, want warning", d.Severity)
			}
		}
	}
	if !found {
		t.Error("forwarding the message wholesale should report PV018")
	}
	if s := rep.Shapes.Emits["sink"]; s == nil || !s.IsTop() {
		t.Errorf("emit shape = %v, want top", s)
	}
}

func TestShapeDynamicTarget(t *testing.T) {
	rep := shapesOf(t, `
function event_received(m) {
    var t = "a";
    if (m.x) { t = "b"; }
    call_module(t, {k: 1});
}`)
	if len(rep.Emits) != 0 {
		t.Errorf("Emits = %v, want none (dynamic target)", rep.Emits)
	}
	if rep.DynamicEmit == nil || rep.DynamicEmit.Fields["k"] == nil {
		t.Errorf("DynamicEmit = %v, want object{k}", rep.DynamicEmit)
	}
}

func TestShapeGlobalWidening(t *testing.T) {
	rep := shapesOf(t, `
var constant = {tag: "fixed"};
var mutated = {n: 0};
function event_received(m) {
    mutated.n = mutated.n + 1;
    call_module("sink", {c: constant.tag, v: mutated});
}`)
	s := rep.Emits["sink"]
	if s == nil {
		t.Fatal("no emit shape")
	}
	// constant.tag reads through an unwidened global: string (plus the
	// may-absent null).
	if got := s.Fields["c"]; got == nil || got.Kinds&KindString == 0 || got.IsTop() {
		t.Errorf("c = %v, want string-ish", got)
	}
	// mutated escapes via member write, so it widens to top.
	if got := s.Fields["v"]; got == nil || !got.IsTop() {
		t.Errorf("v = %v, want top (widened global)", got)
	}
}

func TestShapeFunctionReturn(t *testing.T) {
	rep := shapesOf(t, `
function build(n) {
    return {score: n * 2, ok: true};
}
function event_received(m) {
    call_module("sink", build(m.x));
}`)
	s := rep.Emits["sink"]
	if s == nil {
		t.Fatal("no emit shape")
	}
	if got := s.Fields["score"]; got == nil || got.Kinds&KindNumber == 0 {
		t.Errorf("score = %v, want number", got)
	}
	// The function may also fall off the end, so null joins in.
	if s.Kinds&KindNull == 0 {
		t.Errorf("return shape should include null, got %s", s)
	}
}

func TestShapeRecursionWidens(t *testing.T) {
	rep := shapesOf(t, `
function spin(n) {
    if (n <= 0) { return {done: true}; }
    return spin(n - 1);
}
function event_received(m) {
    call_module("sink", spin(3));
}`)
	if s := rep.Emits["sink"]; s == nil || !s.IsTop() {
		t.Errorf("recursive return = %v, want top", s)
	}
}

func TestShapeConsumedFields(t *testing.T) {
	rep := shapesOf(t, `
function event_received(message) {
    var age = now_ms() - message.captured_ms;
    if (message.label == "go") { log(age); }
    if (has(message, "maybe")) { log(1); }
    frame_done();
}`)
	c := rep.Consumed
	if !c.HasHandler || c.Dynamic {
		t.Fatalf("consumed = %+v, want handler, not dynamic", c)
	}
	if u, ok := c.Fields["captured_ms"]; !ok || u.Kinds != KindNumber {
		t.Errorf("captured_ms = %+v, want number requirement", u)
	}
	if u, ok := c.Fields["label"]; !ok || u.Kinds != 0 {
		t.Errorf("label = %+v, want any requirement", u)
	}
	if _, ok := c.Fields["maybe"]; !ok {
		t.Error("has() guard should record the field")
	}
}

func TestShapeConsumedAliasChain(t *testing.T) {
	rep := shapesOf(t, `
function event_received(m) {
    var msg = m;
    var p = msg.pose;
    log(p.x - 1);
    log(msg.seq);
}`)
	c := rep.Consumed
	if c.Dynamic {
		t.Fatal("alias chain should not be dynamic")
	}
	if _, ok := c.Fields["pose"]; !ok {
		t.Error("pose not recorded through alias")
	}
	if _, ok := c.Fields["seq"]; !ok {
		t.Error("seq not recorded through alias")
	}
}

func TestShapeConsumedInterprocedural(t *testing.T) {
	rep := shapesOf(t, `
function grade(ev) {
    return ev.confidence * 2;
}
function event_received(m) {
    log(grade(m));
}`)
	c := rep.Consumed
	if c.Dynamic {
		t.Fatal("known-callee handoff should not be dynamic")
	}
	if u, ok := c.Fields["confidence"]; !ok || u.Kinds != KindNumber {
		t.Errorf("confidence = %+v, want number via interprocedural walk", u)
	}
}

func TestShapeConsumedWholesaleEscape(t *testing.T) {
	for _, src := range []string{
		`function event_received(m) { log(json_encode(m)); }`,
		`function event_received(m) { call_module("x", m); }`,
		`function event_received(m) { for (var k of m) { log(k); } }`,
		`function event_received(m) { log(m["dy" + "n"]); }`,
	} {
		rep := shapesOf(t, src)
		if !rep.Consumed.Dynamic {
			t.Errorf("want dynamic consumption for %q", src)
		}
	}
}

func TestShapeConsumedParamReassignClearsFields(t *testing.T) {
	rep := shapesOf(t, `
function event_received(m) {
    log(m.before);
    m = {};
    log(m.after);
}`)
	c := rep.Consumed
	if !c.Dynamic {
		t.Error("reassigned param should be dynamic")
	}
	if len(c.Fields) != 0 {
		t.Errorf("reassigned param should record no fields, got %v", c.Fields)
	}
}

func TestShapePureFieldWriteIsNotARead(t *testing.T) {
	rep := shapesOf(t, `
function event_received(m) {
    m.stamp = now_ms();
    m.hops += 1;
    frame_done();
}`)
	c := rep.Consumed
	if _, ok := c.Fields["stamp"]; ok {
		t.Error("pure write recorded as a read")
	}
	if u, ok := c.Fields["hops"]; !ok || u.Kinds&KindNumber == 0 {
		t.Errorf("compound write should read: %+v", u)
	}
}

func TestShapeJoinLattice(t *testing.T) {
	num := kindShape(KindNumber)
	str := kindShape(KindString)
	j := num.Join(str)
	if !j.Contains(num) || !j.Contains(str) {
		t.Error("join must contain both inputs")
	}
	if topShape().Join(num).IsTop() != true {
		t.Error("top absorbs")
	}
	var bot *Shape
	if got := bot.Join(num); got.String() != num.String() {
		t.Errorf("bottom join = %s", got)
	}
	if bot.Contains(num) {
		t.Error("bottom contains nothing")
	}
	if !num.Contains(bot) {
		t.Error("everything contains bottom")
	}
}

func TestShapeContainsObjects(t *testing.T) {
	inferred := &Shape{Kinds: KindObject, Fields: map[string]*Shape{
		"a": kindShape(KindNumber),
		"b": topShape(),
	}}
	observed := &Shape{Kinds: KindObject, Fields: map[string]*Shape{
		"a": kindShape(KindNumber),
	}}
	if !inferred.Contains(observed) {
		t.Error("closed subset should be contained (may-union fields)")
	}
	extra := &Shape{Kinds: KindObject, Fields: map[string]*Shape{
		"z": kindShape(KindNumber),
	}}
	if inferred.Contains(extra) {
		t.Error("unknown field in a closed shape must not be contained")
	}
	open := &Shape{Kinds: KindObject, Open: true}
	if !open.Contains(extra) {
		t.Error("open shape contains any fields")
	}
}

func TestShapeOfRuntimeValues(t *testing.T) {
	obj := NewObject()
	obj.Set("n", float64(3))
	obj.Set("s", "x")
	obj.Set("a", NewArray(float64(1), "two"))
	s := ShapeOf(obj)
	if s.Kinds != KindObject {
		t.Fatalf("kinds = %s", s.Kinds)
	}
	if s.Fields["n"].Kinds != KindNumber || s.Fields["s"].Kinds != KindString {
		t.Errorf("scalar fields wrong: %s", s)
	}
	if s.Fields["a"].Elem.Kinds != KindNumber|KindString {
		t.Errorf("array elem = %s", s.Fields["a"].Elem)
	}
	if got := ShapeOf(nil); got.Kinds != KindNull {
		t.Errorf("ShapeOf(nil) = %s", got)
	}
}

func TestShapeRecorderJoins(t *testing.T) {
	r := NewShapeRecorder()
	r.Observe("a->b", float64(1))
	r.Observe("a->b", "s")
	if got := r.Shape("a->b"); got.Kinds != KindNumber|KindString {
		t.Errorf("joined = %s", got)
	}
	if got := r.Edges(); len(got) != 1 || got[0] != "a->b" {
		t.Errorf("edges = %v", got)
	}
	if r.Shape("missing") != nil {
		t.Error("unobserved edge should be nil")
	}
}

func TestShapeStringDeterministic(t *testing.T) {
	s := &Shape{Kinds: KindObject | KindNumber, Fields: map[string]*Shape{
		"b": kindShape(KindString),
		"a": kindShape(KindBool),
	}}
	want := "number|object{a: bool, b: string}"
	if got := s.String(); got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
	if !strings.Contains((&Shape{Kinds: KindObject, Open: true}).String(), "...") {
		t.Error("open marker missing")
	}
}

func TestAnalyzeShapesUnparseable(t *testing.T) {
	rep := AnalyzeShapes("var broken = ;")
	if rep.Consumed.HasHandler || len(rep.Emits) != 0 {
		t.Errorf("unparseable source should yield a zero report: %+v", rep)
	}
}
