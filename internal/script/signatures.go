package script

import (
	"fmt"
	"strings"
)

// This file is the single source of truth for the callable surface a module
// script sees: the Table-1 host API bound by the device runtime
// (internal/device) and the builtins installed by stdlib.go. The static
// analyzer (analyze.go) checks call sites against this table at deploy time,
// and the device runtime validates live arguments with CheckHostArgs — one
// table, so the two layers cannot drift apart.

// Param describes one declared parameter of a host binding or builtin.
type Param struct {
	// Name is the parameter's documentation name, used in error messages.
	Name string
	// Type constrains the argument: "string", "number", "boolean", "array",
	// "object", "function", "null", or "any". Alternatives are separated
	// by "|".
	Type string
}

// Signature declares the arity and argument types of a callable host
// binding, stdlib builtin, or module lifecycle callback.
type Signature struct {
	// Name is the global identifier the callable is bound under.
	Name string
	// Min and Max bound the argument count; Max < 0 means variadic.
	Min, Max int
	// Params types the leading arguments. Arguments beyond len(Params)
	// fall back to Rest.
	Params []Param
	// Rest, when non-empty, types every argument past len(Params).
	Rest string
	// Callback marks module lifecycle functions (init, event_received)
	// that the runtime calls into the script; for callbacks Min/Max bound
	// the declared parameter count rather than call-site arguments.
	Callback bool
	// Cost is the pipecost planner weight of one invocation, in abstract
	// instruction units comparable to interpreter steps. Zero means the
	// default (1): the call runs in Go and is roughly as cheap as one
	// interpreted instruction.
	Cost int64
	// Symbolic marks host calls whose true cost lives outside the script —
	// DNN-backed service invocations whose latency the planner must model
	// separately. Cost is then a coarse stand-in, and the cost-aware
	// planner counts symbolic stages when sizing flow-control credits.
	Symbolic bool
}

// Check validates live call arguments against the signature. Error text
// mirrors the historical host-API style: "call_service: service name must
// be a string, got number".
func (s Signature) Check(args []Value) error {
	if len(args) < s.Min {
		if len(s.Params) > len(args) {
			return fmt.Errorf("%s: missing %s", s.Name, s.Params[len(args)].Name)
		}
		return fmt.Errorf("%s: need at least %d arguments, got %d", s.Name, s.Min, len(args))
	}
	if s.Max >= 0 && len(args) > s.Max {
		return fmt.Errorf("%s: too many arguments (%d, max %d)", s.Name, len(args), s.Max)
	}
	for i, arg := range args {
		var want string
		if i < len(s.Params) {
			want = s.Params[i].Type
		} else {
			want = s.Rest
		}
		if want == "" || want == "any" {
			continue
		}
		if arg == nil && i >= s.Min {
			continue // optional arguments accept null
		}
		if !typeAllowed(want, TypeName(arg)) {
			name := fmt.Sprintf("argument %d", i+1)
			if i < len(s.Params) {
				name = s.Params[i].Name
			}
			return fmt.Errorf("%s: %s must be %s, got %s", s.Name, name, withArticle(want), TypeName(arg))
		}
	}
	return nil
}

// withArticle prefixes a type constraint with a/an for error messages.
func withArticle(spec string) string {
	if strings.ContainsAny(spec[:1], "aeiou") {
		return "an " + spec
	}
	return "a " + spec
}

// typeAllowed reports whether the actual runtime type satisfies a
// "|"-separated type constraint.
func typeAllowed(spec, actual string) bool {
	for _, alt := range strings.Split(spec, "|") {
		if alt == "any" || alt == actual {
			return true
		}
	}
	return false
}

// CheckHostArgs validates args against the named host binding's declared
// signature. Unknown names pass: the caller may bind extras beyond Table 1.
func CheckHostArgs(name string, args []Value) error {
	sig, ok := hostSignatureTable[name]
	if !ok || sig.Callback {
		return nil
	}
	return sig.Check(args)
}

// HostSignature returns the declared signature of a Table-1 host binding or
// module lifecycle callback.
func HostSignature(name string) (Signature, bool) {
	s, ok := hostSignatureTable[name]
	return s, ok
}

// hostSignatureTable declares the bindings installed by the device runtime
// (internal/device.bindHostAPI) plus the lifecycle callbacks it invokes.
var hostSignatureTable = map[string]Signature{
	"call_service": {Name: "call_service", Min: 1, Max: 2, Params: []Param{
		{Name: "service name", Type: "string"}, {Name: "message", Type: "object"}},
		Cost: 25_000, Symbolic: true},
	"call_module": {Name: "call_module", Min: 1, Max: 2, Params: []Param{
		{Name: "module name", Type: "string"}, {Name: "message", Type: "object"}},
		Cost: 500},
	"metric": {Name: "metric", Min: 2, Max: 2, Params: []Param{
		{Name: "name", Type: "string"}, {Name: "value", Type: "number"}},
		Cost: 20},
	"log":         {Name: "log", Min: 0, Max: -1, Cost: 20},
	"now_ms":      {Name: "now_ms", Min: 0, Max: 0, Cost: 5},
	"frame_done":  {Name: "frame_done", Min: 0, Max: 0, Cost: 5},
	"device_name": {Name: "device_name", Min: 0, Max: 0, Cost: 5},

	// Lifecycle callbacks the runtime calls into the module. Min/Max bound
	// the declared parameter count (event_received receives one message).
	"init":           {Name: "init", Min: 0, Max: 0, Callback: true},
	"event_received": {Name: "event_received", Min: 0, Max: 1, Callback: true},
}

// builtinSignatureTable declares the stdlib.go builtins. Types follow the
// runtime coercions exactly: e.g. len accepts strings, arrays, objects and
// null; slice's optional end argument is a number.
var builtinSignatureTable = map[string]Signature{
	"len":    sig1("len", Param{"value", "string|array|object|null"}),
	"str":    sig1("str", Param{"value", "any"}),
	"num":    sig1("num", Param{"value", "any"}),
	"is_nan": sig1("is_nan", Param{"value", "any"}),

	"push":    {Name: "push", Min: 1, Max: -1, Params: []Param{{"array", "array"}}, Rest: "any"},
	"pop":     sig1("pop", Param{"array", "array"}),
	"shift":   sig1("shift", Param{"array", "array"}),
	"unshift": {Name: "unshift", Min: 1, Max: -1, Params: []Param{{"array", "array"}}, Rest: "any"},
	"slice": {Name: "slice", Min: 2, Max: 3, Params: []Param{
		{"value", "array|string"}, {"start", "number"}, {"end", "number"}}},
	"concat":   {Name: "concat", Min: 0, Max: -1, Rest: "array"},
	"index_of": sig2("index_of", Param{"value", "array|string"}, Param{"needle", "any"}),
	"reverse":  sig1("reverse", Param{"array", "array"}),
	"sort":     costed(sig1("sort", Param{"array", "array"}), 25),
	"range":    sig1("range", Param{"n", "number"}),

	"keys":   sig1("keys", Param{"object", "object"}),
	"values": sig1("values", Param{"object", "object"}),
	"has":    sig2("has", Param{"object", "object"}, Param{"key", "string"}),
	"remove": sig2("remove", Param{"object", "object"}, Param{"key", "string"}),

	"abs":   sig1("abs", Param{"x", "number"}),
	"floor": sig1("floor", Param{"x", "number"}),
	"ceil":  sig1("ceil", Param{"x", "number"}),
	"round": sig1("round", Param{"x", "number"}),
	"sqrt":  sig1("sqrt", Param{"x", "number"}),
	"exp":   sig1("exp", Param{"x", "number"}),
	"log":   sig1("log", Param{"x", "number"}),
	"sin":   sig1("sin", Param{"x", "number"}),
	"cos":   sig1("cos", Param{"x", "number"}),
	"atan2": sig2("atan2", Param{"y", "number"}, Param{"x", "number"}),
	"pow":   sig2("pow", Param{"base", "number"}, Param{"exp", "number"}),
	"min":   {Name: "min", Min: 1, Max: -1, Rest: "number"},
	"max":   {Name: "max", Min: 1, Max: -1, Rest: "number"},

	"substr": {Name: "substr", Min: 2, Max: 3, Params: []Param{
		{"string", "string"}, {"start", "number"}, {"end", "number"}}},
	"split":       sig2("split", Param{"string", "string"}, Param{"separator", "string"}),
	"join":        sig2("join", Param{"array", "array"}, Param{"separator", "string"}),
	"upper":       sig1("upper", Param{"string", "string"}),
	"lower":       sig1("lower", Param{"string", "string"}),
	"trim":        sig1("trim", Param{"string", "string"}),
	"contains":    sig2("contains", Param{"value", "string|array"}, Param{"needle", "any"}),
	"starts_with": sig2("starts_with", Param{"string", "string"}, Param{"prefix", "string"}),
	"ends_with":   sig2("ends_with", Param{"string", "string"}, Param{"suffix", "string"}),

	"json_encode": costed(sig1("json_encode", Param{"value", "any"}), 50),
	"json_decode": costed(sig1("json_decode", Param{"text", "string"}), 50),
}

// costed overrides a builtin signature's pipecost planner weight; builtins
// without an override default to cost 1.
func costed(s Signature, cost int64) Signature {
	s.Cost = cost
	return s
}

func sig1(name string, p Param) Signature {
	return Signature{Name: name, Min: 1, Max: 1, Params: []Param{p}}
}

func sig2(name string, a, b Param) Signature {
	return Signature{Name: name, Min: 2, Max: 2, Params: []Param{a, b}}
}

// callSignatures is the merged table the analyzer resolves call sites
// against. Host bindings win over same-named builtins ("log"), matching the
// bind order in the device runtime: stdlib first, host API after.
var callSignatures = func() map[string]Signature {
	merged := make(map[string]Signature, len(builtinSignatureTable)+len(hostSignatureTable))
	for name, s := range builtinSignatureTable {
		merged[name] = s
	}
	for name, s := range hostSignatureTable {
		merged[name] = s
	}
	return merged
}()

// CallSignatures returns the merged host+builtin signature table keyed by
// global name, including Callback entries for init and event_received. The
// map is shared; callers must not mutate it.
func CallSignatures() map[string]Signature { return callSignatures }
