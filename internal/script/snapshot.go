package script

import (
	"fmt"
	"sort"
	"strings"
)

// Snapshot is a detached copy of a Context's mutable, data-valued globals —
// the serializable part of a module's encapsulated state. It backs live
// module migration: the supervisor snapshots a quiesced module's context on
// the failing device and restores it into the freshly spawned replacement,
// so counters, buffers and thresholds survive the move.
//
// Only data survives: nil, booleans, numbers, strings, arrays and objects
// (captured deeply, in their Go form). Functions — script closures and host
// bindings alike — are intentionally skipped; the destination context
// re-creates them by loading the module source, which keeps snapshots free
// of environment references that cannot cross devices. Constants are also
// skipped: they are immutable, so reloading the source restores them
// exactly.
type Snapshot struct {
	vars []savedVar
	// version is the source context's _PRESERVATION_VERSION at capture
	// time. The module runtime refuses to restore a snapshot into a
	// context that declares a different version — a code change that bumps
	// the version discards old state instead of resurrecting a poisoned or
	// shape-incompatible global.
	version int64
}

// savedVar is one captured global in ToGo form (nil, bool, float64,
// string, []any or map[string]any).
type savedVar struct {
	name string
	data any
}

// Snapshot captures the context's current data-valued globals. The
// receiver must be quiescent — a Context is not safe for concurrent use,
// so the module runtime only snapshots after the event loop has stopped.
// Snapshots taken at the same logical point must be byte-identical across
// runs; the sort below restores order after the map walk.
//
//vpvet:deterministic
func (c *Context) Snapshot() *Snapshot {
	s := &Snapshot{version: c.PreservationVersion()}
	//vpvet:allow determinism iteration order is erased by the sort below
	for name, b := range c.globals.vars {
		if b.constant {
			continue
		}
		switch b.value.(type) {
		case nil, bool, float64, string, *Array, *Object:
			s.vars = append(s.vars, savedVar{name: name, data: ToGo(b.value)})
		}
	}
	sort.Slice(s.vars, func(i, j int) bool { return s.vars[i].name < s.vars[j].name })
	return s
}

// Restore applies a snapshot to this context: existing mutable globals are
// overwritten in place (so closures that captured them observe the new
// values) and globals absent from the context are defined. Constants and
// function-valued bindings in the destination are left untouched. A nil
// snapshot is a no-op.
//
//vpvet:deterministic
func (c *Context) Restore(s *Snapshot) {
	if s == nil {
		return
	}
	for _, v := range s.vars {
		if b, ok := c.globals.vars[v.name]; ok {
			if b.constant {
				continue
			}
			switch b.value.(type) {
			case nil, bool, float64, string, *Array, *Object:
				b.value = FromGo(v.data)
			}
		} else {
			c.globals.define(v.name, FromGo(v.data), false)
		}
	}
}

// Version returns the _PRESERVATION_VERSION the source context declared
// when the snapshot was taken (0 when undeclared, or for a nil snapshot).
func (s *Snapshot) Version() int64 {
	if s == nil {
		return 0
	}
	return s.version
}

// Len reports how many globals the snapshot captured.
func (s *Snapshot) Len() int {
	if s == nil {
		return 0
	}
	return len(s.vars)
}

// String renders the snapshot in a canonical name-sorted form — the value
// round-trip tests compare, and a stable fingerprint of module state.
func (s *Snapshot) String() string {
	if s == nil {
		return ""
	}
	var b strings.Builder
	for _, v := range s.vars {
		fmt.Fprintf(&b, "%s=%s\n", v.name, Stringify(FromGo(v.data)))
	}
	return b.String()
}
