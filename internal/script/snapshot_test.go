package script_test

import (
	"fmt"
	"strings"
	"testing"

	"videopipe/internal/apps"
	"videopipe/internal/script"
)

// stubHostAPI binds no-op versions of the Table-1 module interface so
// example-app module sources load and run outside a device.
func stubHostAPI(c *script.Context) {
	noop := func([]script.Value) (script.Value, error) { return nil, nil }
	c.Bind("call_service", func([]script.Value) (script.Value, error) {
		return script.FromGo(map[string]any{}), nil
	})
	c.Bind("call_module", noop)
	c.Bind("log", noop)
	c.Bind("now_ms", func([]script.Value) (script.Value, error) { return float64(0), nil })
	c.Bind("frame_done", noop)
	c.Bind("device_name", func([]script.Value) (script.Value, error) { return "test", nil })
	c.Bind("metric", noop)
}

const statefulSource = `
var count = 0;
var history = [];
var config = {threshold: 0.5, label: "reps"};
const UNIT = "ms";

function bump(v) {
	count = count + 1;
	history[history.length] = v;
	config.last = v;
	return count;
}
`

func TestSnapshotRoundTrip(t *testing.T) {
	a := script.NewContext()
	if err := a.Load(statefulSource); err != nil {
		t.Fatalf("Load: %v", err)
	}
	for i := 1; i <= 3; i++ {
		if _, err := a.Call("bump", float64(i*10)); err != nil {
			t.Fatalf("bump: %v", err)
		}
	}
	snap := a.Snapshot()

	b := script.NewContext()
	if err := b.Load(statefulSource); err != nil {
		t.Fatalf("Load: %v", err)
	}
	b.Restore(snap)

	// The restored context's state fingerprint matches the original's.
	if got, want := b.Snapshot().String(), snap.String(); got != want {
		t.Errorf("restored snapshot differs:\ngot:\n%s\nwant:\n%s", got, want)
	}
	// And behaviour continues from the migrated state, not from zero.
	v, err := b.Call("bump", float64(40))
	if err != nil {
		t.Fatalf("bump after restore: %v", err)
	}
	if v != float64(4) {
		t.Errorf("bump after restore = %v, want 4 (state should carry over)", v)
	}
}

// TestSnapshotGolden pins the canonical rendering so the fingerprint stays
// stable across refactors — migration journals depend on it being
// deterministic.
func TestSnapshotGolden(t *testing.T) {
	c := script.NewContext()
	if err := c.Load(statefulSource); err != nil {
		t.Fatalf("Load: %v", err)
	}
	if _, err := c.Call("bump", float64(7)); err != nil {
		t.Fatalf("bump: %v", err)
	}
	const want = "config={label: reps, last: 7, threshold: 0.5}\ncount=1\nhistory=[7]\n"
	if got := c.Snapshot().String(); got != want {
		t.Errorf("snapshot string = %q, want %q", got, want)
	}
}

func TestSnapshotSkipsFunctionsAndConstants(t *testing.T) {
	c := script.NewContext()
	if err := c.Load(statefulSource); err != nil {
		t.Fatalf("Load: %v", err)
	}
	s := c.Snapshot().String()
	if strings.Contains(s, "bump") {
		t.Errorf("snapshot captured a function: %q", s)
	}
	if strings.Contains(s, "UNIT") {
		t.Errorf("snapshot captured a constant: %q", s)
	}
	// Host bindings (log, call_service, ...) are functions too.
	if strings.Contains(s, "call_service") || strings.Contains(s, "log=") {
		t.Errorf("snapshot captured host bindings: %q", s)
	}
}

func TestSnapshotRestoreNilIsNoop(t *testing.T) {
	c := script.NewContext()
	if err := c.Load("var x = 1;"); err != nil {
		t.Fatalf("Load: %v", err)
	}
	before := c.Snapshot().String()
	c.Restore(nil)
	if got := c.Snapshot().String(); got != before {
		t.Errorf("Restore(nil) changed state: %q -> %q", before, got)
	}
}

// TestSnapshotExampleAppModules round-trips the real example applications'
// module state: each module source is loaded, init() runs, and the
// resulting globals must survive snapshot -> fresh context -> restore with
// an identical fingerprint. This is the exact path live migration takes.
func TestSnapshotExampleAppModules(t *testing.T) {
	type moduleSrc struct{ app, name, source string }
	var mods []moduleSrc
	fit := apps.FitnessConfig("snapfit", 10, "squat")
	for _, m := range fit.Modules {
		mods = append(mods, moduleSrc{"fitness", m.Name, m.Source})
	}
	gest := apps.GestureConfig("snapgest", 10, "clap")
	for _, m := range gest.Modules {
		mods = append(mods, moduleSrc{"gesture", m.Name, m.Source})
	}

	for _, m := range mods {
		m := m
		t.Run(fmt.Sprintf("%s/%s", m.app, m.name), func(t *testing.T) {
			orig := script.NewContext()
			stubHostAPI(orig)
			if err := orig.Load(m.source); err != nil {
				t.Fatalf("Load: %v", err)
			}
			if orig.Has("init") {
				if _, err := orig.Call("init"); err != nil {
					t.Fatalf("init: %v", err)
				}
			}
			snap := orig.Snapshot()

			fresh := script.NewContext()
			stubHostAPI(fresh)
			if err := fresh.Load(m.source); err != nil {
				t.Fatalf("Load fresh: %v", err)
			}
			fresh.Restore(snap)
			if got, want := fresh.Snapshot().String(), snap.String(); got != want {
				t.Errorf("round-trip fingerprint differs:\ngot:\n%s\nwant:\n%s", got, want)
			}
		})
	}
}
