package script

import (
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
)

// installStdlib registers the builtin function library in a context. The
// set mirrors the helpers the paper's JavaScript modules would reach for:
// array and object manipulation, math, strings and JSON.
func installStdlib(c *Context) {
	builtins := map[string]HostFunc{
		// ---- general ----
		"len":    stdLen,
		"str":    func(a []Value) (Value, error) { return Stringify(arg(a, 0)), nil },
		"num":    stdNum,
		"is_nan": func(a []Value) (Value, error) { n, ok := arg(a, 0).(float64); return ok && math.IsNaN(n), nil },

		// ---- arrays ----
		"push":     stdPush,
		"pop":      stdPop,
		"shift":    stdShift,
		"unshift":  stdUnshift,
		"slice":    stdSlice,
		"concat":   stdConcat,
		"index_of": stdIndexOf,
		"reverse":  stdReverse,
		"sort":     stdSort,
		"range":    stdRange,

		// ---- objects ----
		"keys":   stdKeys,
		"values": stdValues,
		"has":    stdHas,
		"remove": stdRemove,

		// ---- math ----
		"abs":   math1(math.Abs),
		"floor": math1(math.Floor),
		"ceil":  math1(math.Ceil),
		"round": math1(math.Round),
		"sqrt":  math1(math.Sqrt),
		"exp":   math1(math.Exp),
		"log":   math1(math.Log),
		"sin":   math1(math.Sin),
		"cos":   math1(math.Cos),
		"atan2": math2(math.Atan2),
		"pow":   math2(math.Pow),
		"min":   stdMin,
		"max":   stdMax,

		// ---- strings ----
		"substr":      stdSubstr,
		"split":       stdSplit,
		"join":        stdJoin,
		"upper":       func(a []Value) (Value, error) { s, err := strArg(a, 0, "upper"); return strings.ToUpper(s), err },
		"lower":       func(a []Value) (Value, error) { s, err := strArg(a, 0, "lower"); return strings.ToLower(s), err },
		"trim":        func(a []Value) (Value, error) { s, err := strArg(a, 0, "trim"); return strings.TrimSpace(s), err },
		"contains":    stdContains,
		"starts_with": stdStartsWith,
		"ends_with":   stdEndsWith,

		// ---- JSON ----
		"json_encode": stdJSONEncode,
		"json_decode": stdJSONDecode,
	}
	for name, fn := range builtins {
		c.Bind(name, fn)
	}
}

func arg(args []Value, i int) Value {
	if i < len(args) {
		return args[i]
	}
	return nil
}

func numArg(args []Value, i int, fn string) (float64, error) {
	n, ok := arg(args, i).(float64)
	if !ok {
		return 0, fmt.Errorf("%s: argument %d must be a number, got %s", fn, i+1, TypeName(arg(args, i)))
	}
	return n, nil
}

func strArg(args []Value, i int, fn string) (string, error) {
	s, ok := arg(args, i).(string)
	if !ok {
		return "", fmt.Errorf("%s: argument %d must be a string, got %s", fn, i+1, TypeName(arg(args, i)))
	}
	return s, nil
}

func arrArg(args []Value, i int, fn string) (*Array, error) {
	a, ok := arg(args, i).(*Array)
	if !ok {
		return nil, fmt.Errorf("%s: argument %d must be an array, got %s", fn, i+1, TypeName(arg(args, i)))
	}
	return a, nil
}

func math1(f func(float64) float64) HostFunc {
	return func(args []Value) (Value, error) {
		n, err := numArg(args, 0, "math builtin")
		if err != nil {
			return nil, err
		}
		return f(n), nil
	}
}

func math2(f func(a, b float64) float64) HostFunc {
	return func(args []Value) (Value, error) {
		a, err := numArg(args, 0, "math builtin")
		if err != nil {
			return nil, err
		}
		b, err := numArg(args, 1, "math builtin")
		if err != nil {
			return nil, err
		}
		return f(a, b), nil
	}
}

func stdLen(args []Value) (Value, error) {
	switch x := arg(args, 0).(type) {
	case string:
		return float64(len(x)), nil
	case *Array:
		return float64(len(x.Elems)), nil
	case *Object:
		return float64(len(x.Fields)), nil
	case nil:
		return float64(0), nil
	default:
		return nil, fmt.Errorf("len: unsupported type %s", TypeName(x))
	}
}

func stdNum(args []Value) (Value, error) {
	switch x := arg(args, 0).(type) {
	case float64:
		return x, nil
	case bool:
		if x {
			return float64(1), nil
		}
		return float64(0), nil
	case string:
		n, err := strconv.ParseFloat(strings.TrimSpace(x), 64)
		if err != nil {
			return math.NaN(), nil
		}
		return n, nil
	default:
		return math.NaN(), nil
	}
}

func stdPush(args []Value) (Value, error) {
	a, err := arrArg(args, 0, "push")
	if err != nil {
		return nil, err
	}
	a.Elems = append(a.Elems, args[1:]...)
	return float64(len(a.Elems)), nil
}

func stdPop(args []Value) (Value, error) {
	a, err := arrArg(args, 0, "pop")
	if err != nil {
		return nil, err
	}
	if len(a.Elems) == 0 {
		return nil, nil
	}
	v := a.Elems[len(a.Elems)-1]
	a.Elems = a.Elems[:len(a.Elems)-1]
	return v, nil
}

func stdShift(args []Value) (Value, error) {
	a, err := arrArg(args, 0, "shift")
	if err != nil {
		return nil, err
	}
	if len(a.Elems) == 0 {
		return nil, nil
	}
	v := a.Elems[0]
	a.Elems = append([]Value(nil), a.Elems[1:]...)
	return v, nil
}

func stdUnshift(args []Value) (Value, error) {
	a, err := arrArg(args, 0, "unshift")
	if err != nil {
		return nil, err
	}
	a.Elems = append(append([]Value(nil), args[1:]...), a.Elems...)
	return float64(len(a.Elems)), nil
}

// stdSlice handles both arrays and strings: slice(x, start[, end]).
func stdSlice(args []Value) (Value, error) {
	start64, err := numArg(args, 1, "slice")
	if err != nil {
		return nil, err
	}
	switch x := arg(args, 0).(type) {
	case *Array:
		start, end := sliceBounds(len(x.Elems), start64, arg(args, 2))
		out := make([]Value, end-start)
		copy(out, x.Elems[start:end])
		return &Array{Elems: out}, nil
	case string:
		start, end := sliceBounds(len(x), start64, arg(args, 2))
		return x[start:end], nil
	default:
		return nil, fmt.Errorf("slice: argument 1 must be array or string, got %s", TypeName(x))
	}
}

func sliceBounds(n int, start64 float64, endArg Value) (int, int) {
	start := int(start64)
	if start < 0 {
		start += n
	}
	if start < 0 {
		start = 0
	}
	if start > n {
		start = n
	}
	end := n
	if e, ok := endArg.(float64); ok {
		end = int(e)
		if end < 0 {
			end += n
		}
	}
	if end > n {
		end = n
	}
	if end < start {
		end = start
	}
	return start, end
}

func stdConcat(args []Value) (Value, error) {
	out := &Array{}
	for i := range args {
		a, err := arrArg(args, i, "concat")
		if err != nil {
			return nil, err
		}
		out.Elems = append(out.Elems, a.Elems...)
	}
	return out, nil
}

func stdIndexOf(args []Value) (Value, error) {
	switch x := arg(args, 0).(type) {
	case *Array:
		for i, e := range x.Elems {
			if valuesEqual(e, arg(args, 1)) {
				return float64(i), nil
			}
		}
		return float64(-1), nil
	case string:
		sub, err := strArg(args, 1, "index_of")
		if err != nil {
			return nil, err
		}
		return float64(strings.Index(x, sub)), nil
	default:
		return nil, fmt.Errorf("index_of: argument 1 must be array or string, got %s", TypeName(x))
	}
}

func stdReverse(args []Value) (Value, error) {
	a, err := arrArg(args, 0, "reverse")
	if err != nil {
		return nil, err
	}
	for i, j := 0, len(a.Elems)-1; i < j; i, j = i+1, j-1 {
		a.Elems[i], a.Elems[j] = a.Elems[j], a.Elems[i]
	}
	return a, nil
}

// stdSort sorts an array of numbers or strings in place.
func stdSort(args []Value) (Value, error) {
	a, err := arrArg(args, 0, "sort")
	if err != nil {
		return nil, err
	}
	var sortErr error
	sort.SliceStable(a.Elems, func(i, j int) bool {
		xi, oki := a.Elems[i].(float64)
		xj, okj := a.Elems[j].(float64)
		if oki && okj {
			return xi < xj
		}
		si, oki := a.Elems[i].(string)
		sj, okj := a.Elems[j].(string)
		if oki && okj {
			return si < sj
		}
		sortErr = errors.New("sort: array must contain only numbers or only strings")
		return false
	})
	if sortErr != nil {
		return nil, sortErr
	}
	return a, nil
}

func stdRange(args []Value) (Value, error) {
	n, err := numArg(args, 0, "range")
	if err != nil {
		return nil, err
	}
	if n < 0 || n > maxArrayLen {
		return nil, fmt.Errorf("range: bad length %v", n)
	}
	out := &Array{Elems: make([]Value, int(n))}
	for i := range out.Elems {
		out.Elems[i] = float64(i)
	}
	return out, nil
}

func stdKeys(args []Value) (Value, error) {
	o, ok := arg(args, 0).(*Object)
	if !ok {
		return nil, fmt.Errorf("keys: argument must be an object, got %s", TypeName(arg(args, 0)))
	}
	out := &Array{}
	for _, k := range o.SortedKeys() {
		out.Elems = append(out.Elems, k)
	}
	return out, nil
}

func stdValues(args []Value) (Value, error) {
	o, ok := arg(args, 0).(*Object)
	if !ok {
		return nil, fmt.Errorf("values: argument must be an object, got %s", TypeName(arg(args, 0)))
	}
	out := &Array{}
	for _, k := range o.SortedKeys() {
		out.Elems = append(out.Elems, o.Fields[k])
	}
	return out, nil
}

func stdHas(args []Value) (Value, error) {
	o, ok := arg(args, 0).(*Object)
	if !ok {
		return nil, fmt.Errorf("has: argument must be an object, got %s", TypeName(arg(args, 0)))
	}
	key, err := strArg(args, 1, "has")
	if err != nil {
		return nil, err
	}
	_, found := o.Fields[key]
	return found, nil
}

func stdRemove(args []Value) (Value, error) {
	o, ok := arg(args, 0).(*Object)
	if !ok {
		return nil, fmt.Errorf("remove: argument must be an object, got %s", TypeName(arg(args, 0)))
	}
	key, err := strArg(args, 1, "remove")
	if err != nil {
		return nil, err
	}
	_, found := o.Fields[key]
	delete(o.Fields, key)
	return found, nil
}

func stdMin(args []Value) (Value, error) {
	if len(args) == 0 {
		return nil, errors.New("min: need at least one argument")
	}
	best, err := numArg(args, 0, "min")
	if err != nil {
		return nil, err
	}
	for i := 1; i < len(args); i++ {
		n, err := numArg(args, i, "min")
		if err != nil {
			return nil, err
		}
		best = math.Min(best, n)
	}
	return best, nil
}

func stdMax(args []Value) (Value, error) {
	if len(args) == 0 {
		return nil, errors.New("max: need at least one argument")
	}
	best, err := numArg(args, 0, "max")
	if err != nil {
		return nil, err
	}
	for i := 1; i < len(args); i++ {
		n, err := numArg(args, i, "max")
		if err != nil {
			return nil, err
		}
		best = math.Max(best, n)
	}
	return best, nil
}

func stdSubstr(args []Value) (Value, error) {
	s, err := strArg(args, 0, "substr")
	if err != nil {
		return nil, err
	}
	start, err := numArg(args, 1, "substr")
	if err != nil {
		return nil, err
	}
	lo, hi := sliceBounds(len(s), start, arg(args, 2))
	return s[lo:hi], nil
}

func stdSplit(args []Value) (Value, error) {
	s, err := strArg(args, 0, "split")
	if err != nil {
		return nil, err
	}
	sep, err := strArg(args, 1, "split")
	if err != nil {
		return nil, err
	}
	parts := strings.Split(s, sep)
	out := &Array{Elems: make([]Value, len(parts))}
	for i, p := range parts {
		out.Elems[i] = p
	}
	return out, nil
}

func stdJoin(args []Value) (Value, error) {
	a, err := arrArg(args, 0, "join")
	if err != nil {
		return nil, err
	}
	sep, err := strArg(args, 1, "join")
	if err != nil {
		return nil, err
	}
	parts := make([]string, len(a.Elems))
	for i, e := range a.Elems {
		parts[i] = Stringify(e)
	}
	return strings.Join(parts, sep), nil
}

func stdContains(args []Value) (Value, error) {
	switch x := arg(args, 0).(type) {
	case string:
		sub, err := strArg(args, 1, "contains")
		if err != nil {
			return nil, err
		}
		return strings.Contains(x, sub), nil
	case *Array:
		for _, e := range x.Elems {
			if valuesEqual(e, arg(args, 1)) {
				return true, nil
			}
		}
		return false, nil
	default:
		return nil, fmt.Errorf("contains: argument 1 must be string or array, got %s", TypeName(x))
	}
}

func stdStartsWith(args []Value) (Value, error) {
	s, err := strArg(args, 0, "starts_with")
	if err != nil {
		return nil, err
	}
	prefix, err := strArg(args, 1, "starts_with")
	if err != nil {
		return nil, err
	}
	return strings.HasPrefix(s, prefix), nil
}

func stdEndsWith(args []Value) (Value, error) {
	s, err := strArg(args, 0, "ends_with")
	if err != nil {
		return nil, err
	}
	suffix, err := strArg(args, 1, "ends_with")
	if err != nil {
		return nil, err
	}
	return strings.HasSuffix(s, suffix), nil
}

func stdJSONEncode(args []Value) (Value, error) {
	data, err := json.Marshal(ToGo(arg(args, 0)))
	if err != nil {
		return nil, fmt.Errorf("json_encode: %w", err)
	}
	return string(data), nil
}

func stdJSONDecode(args []Value) (Value, error) {
	s, err := strArg(args, 0, "json_decode")
	if err != nil {
		return nil, err
	}
	var out any
	if err := json.Unmarshal([]byte(s), &out); err != nil {
		return nil, fmt.Errorf("json_decode: %w", err)
	}
	return FromGo(out), nil
}
