package script

import (
	"math"
	"reflect"
	"testing"
	"testing/quick"
)

func TestLenBuiltin(t *testing.T) {
	cases := map[string]float64{
		`len("hello")`:   5,
		`len([1,2,3])`:   3,
		`len({a:1,b:2})`: 2,
		`len("")`:        0,
		`len(null)`:      0,
	}
	for src, want := range cases {
		if got := evalNum(t, src); got != want {
			t.Errorf("%s = %v, want %v", src, got, want)
		}
	}
	if _, err := NewContext().Eval("len(42)"); err == nil {
		t.Error("len(42) succeeded")
	}
}

func TestArrayBuiltins(t *testing.T) {
	cases := map[string]string{
		`var a=[1]; push(a,2,3); str(a)`:      "[1, 2, 3]",
		`var a=[1,2,3]; str(pop(a)) + str(a)`: "3[1, 2]",
		`str(pop([]))`:                        "null",
		`var a=[1,2]; str(shift(a)) + str(a)`: "1[2]",
		`str(shift([]))`:                      "null",
		`var a=[3]; unshift(a,1,2); str(a)`:   "[1, 2, 3]",
		`str(slice([1,2,3,4], 1, 3))`:         "[2, 3]",
		`str(slice([1,2,3,4], 2))`:            "[3, 4]",
		`str(slice([1,2,3,4], -2))`:           "[3, 4]",
		`str(slice([1,2,3], 0, -1))`:          "[1, 2]",
		`str(slice([1,2], 5))`:                "[]",
		`str(concat([1],[2,3],[]))`:           "[1, 2, 3]",
		`str(index_of([5,6,7], 6))`:           "1",
		`str(index_of([5,6,7], 9))`:           "-1",
		`str(reverse([1,2,3]))`:               "[3, 2, 1]",
		`str(sort([3,1,2]))`:                  "[1, 2, 3]",
		`str(sort(["b","a"]))`:                "[a, b]",
		`str(range(4))`:                       "[0, 1, 2, 3]",
		`str(contains([1,2], 2))`:             "true",
		`str(contains([1,2], 3))`:             "false",
	}
	for src, want := range cases {
		if got := evalVal(t, src); got != want {
			t.Errorf("%s = %v, want %q", src, got, want)
		}
	}
	if _, err := NewContext().Eval(`sort([1, "a"])`); err == nil {
		t.Error("sort on mixed types succeeded")
	}
}

func TestSliceDoesNotAliasSource(t *testing.T) {
	src := `
		var a = [1, 2, 3];
		var b = slice(a, 0);
		b[0] = 99;
		a[0]
	`
	if got := evalNum(t, src); got != 1 {
		t.Errorf("slice aliases source: a[0] = %v", got)
	}
}

func TestObjectBuiltins(t *testing.T) {
	cases := map[string]string{
		`str(keys({b:1, a:2}))`:                  "[a, b]",
		`str(values({b:1, a:2}))`:                "[2, 1]",
		`str(has({a:1}, "a"))`:                   "true",
		`str(has({a:1}, "z"))`:                   "false",
		`var o={a:1}; str(remove(o,"a"))+str(o)`: "true{}",
		`var o={}; str(remove(o,"a"))`:           "false",
	}
	for src, want := range cases {
		if got := evalVal(t, src); got != want {
			t.Errorf("%s = %v, want %q", src, got, want)
		}
	}
}

func TestMathBuiltins(t *testing.T) {
	cases := map[string]float64{
		"abs(-3)":      3,
		"floor(2.9)":   2,
		"ceil(2.1)":    3,
		"round(2.5)":   3,
		"sqrt(16)":     4,
		"pow(2, 10)":   1024,
		"min(3, 1, 2)": 1,
		"max(3, 9, 2)": 9,
		"exp(0)":       1,
		"log(1)":       0,
		"sin(0)":       0,
		"atan2(0, 1)":  0,
	}
	for src, want := range cases {
		if got := evalNum(t, src); math.Abs(got-want) > 1e-12 {
			t.Errorf("%s = %v, want %v", src, got, want)
		}
	}
	if _, err := NewContext().Eval("min()"); err == nil {
		t.Error("min() with no args succeeded")
	}
}

func TestStringBuiltins(t *testing.T) {
	cases := map[string]string{
		`substr("abcdef", 1, 3)`:          "bc",
		`substr("abcdef", 3)`:             "def",
		`str(split("a,b,c", ","))`:        "[a, b, c]",
		`join(["a","b"], "-")`:            "a-b",
		`join([1,2], "+")`:                "1+2",
		`upper("abc")`:                    "ABC",
		`lower("ABC")`:                    "abc",
		`trim("  x  ")`:                   "x",
		`str(contains("hello", "ell"))`:   "true",
		`str(starts_with("hello", "he"))`: "true",
		`str(ends_with("hello", "lo"))`:   "true",
		`str(index_of("hello", "ll"))`:    "2",
	}
	for src, want := range cases {
		if got := evalVal(t, src); got != want {
			t.Errorf("%s = %v, want %q", src, got, want)
		}
	}
}

func TestJSONBuiltins(t *testing.T) {
	src := `
		var o = json_decode('{"name":"pose","points":[1,2,3],"ok":true}');
		o.name + ":" + str(len(o.points)) + ":" + str(o.ok)
	`
	if got := evalVal(t, src); got != "pose:3:true" {
		t.Errorf("json_decode = %v", got)
	}

	src2 := `json_encode({a: [1, 2], b: "x"})`
	if got := evalVal(t, src2); got != `{"a":[1,2],"b":"x"}` {
		t.Errorf("json_encode = %v", got)
	}

	if _, err := NewContext().Eval(`json_decode("{bad json")`); err == nil {
		t.Error("json_decode of invalid input succeeded")
	}
}

func TestJSONRoundTripProperty(t *testing.T) {
	// Property: encode(decode(encode(x))) == encode(x) for script values
	// built from Go primitives.
	c := NewContext()
	check := func(s map[string]float64, arr []float64, label string) bool {
		in := map[string]any{"label": label}
		for k, v := range s {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return true
			}
			in[k] = v
		}
		fs := make([]any, 0, len(arr))
		for _, v := range arr {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return true
			}
			fs = append(fs, v)
		}
		in["arr"] = fs

		v := FromGo(in)
		c.BindValue("subject", v)
		enc1, err := c.Eval("json_encode(subject)")
		if err != nil {
			return false
		}
		c.BindValue("enc1", enc1)
		enc2, err := c.Eval("json_encode(json_decode(enc1))")
		if err != nil {
			return false
		}
		return enc1 == enc2
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestFromGoToGoRoundTrip(t *testing.T) {
	in := map[string]any{
		"n":    1.5,
		"s":    "text",
		"b":    true,
		"null": nil,
		"arr":  []any{1.0, "two", false},
		"obj":  map[string]any{"nested": []any{map[string]any{"deep": 9.0}}},
	}
	out := ToGo(FromGo(in))
	if !reflect.DeepEqual(out, in) {
		t.Errorf("round trip mismatch:\n got %#v\nwant %#v", out, in)
	}
}

func TestFromGoNumericWidths(t *testing.T) {
	cases := []any{int(3), int32(3), int64(3), uint64(3), float32(3)}
	for _, in := range cases {
		if got := FromGo(in); got != float64(3) {
			t.Errorf("FromGo(%T) = %v, want float64(3)", in, got)
		}
	}
	if got := FromGo([]byte("bytes")); got != "bytes" {
		t.Errorf("FromGo([]byte) = %v", got)
	}
	if got := FromGo([]float64{1, 2}); Stringify(got) != "[1, 2]" {
		t.Errorf("FromGo([]float64) = %v", Stringify(got))
	}
	if got := FromGo([]string{"a"}); Stringify(got) != "[a]" {
		t.Errorf("FromGo([]string) = %v", Stringify(got))
	}
}

func TestToGoFunctionsBecomeNil(t *testing.T) {
	c := NewContext()
	v, err := c.Eval("function f() {} f")
	if err != nil {
		t.Fatalf("Eval: %v", err)
	}
	if got := ToGo(v); got != nil {
		t.Errorf("ToGo(function) = %v, want nil", got)
	}
}

func TestTruthyTable(t *testing.T) {
	truthy := []Value{true, float64(1), float64(-1), "x", NewArray(), NewObject(), &Function{}}
	falsy := []Value{nil, false, float64(0), math.NaN(), ""}
	for _, v := range truthy {
		if !Truthy(v) {
			t.Errorf("Truthy(%v) = false, want true", v)
		}
	}
	for _, v := range falsy {
		if Truthy(v) {
			t.Errorf("Truthy(%v) = true, want false", v)
		}
	}
}
