// expect: none
// Counted loops with constant bounds, including nesting and non-unit
// steps, all get closed-form iteration counts.
var window = [];
function event_received(message) {
  var sum = 0;
  for (var i = 0; i < 16; i++) {
    sum += i;
  }
  for (var j = 100; j >= 0; j -= 5) {
    sum += j;
  }
  for (var a = 0; a < 4; a++) {
    for (var b = 0; b < 4; b++) {
      sum += a * b;
    }
  }
  push(window, sum);
  if (len(window) > 8) {
    shift(window);
  }
  metric("sum", sum);
  frame_done();
}
