// expect: none
// for-of over literals, range(K) and keys of an object literal all have
// statically known lengths.
function event_received(message) {
  var total = 0;
  for (x of [1, 2, 3, 4]) {
    total += x;
  }
  for (i of range(10)) {
    total += i;
  }
  for (k of keys({a: 1, b: 2})) {
    log(k, total);
  }
  for (c of "abc") {
    log(c);
  }
  metric("total", total);
  frame_done();
}
