// expect: none
// Straight-line handler with helper calls, branches and host calls: fully
// boundable.
var count = 0;
function classify(r) {
  if (r.found && r.confidence > 0.5) {
    return r.pose;
  }
  return "unknown";
}
function event_received(message) {
  count++;
  var r = call_service("pose_detector", {frame_ref: message.frame_ref});
  var label = classify(r);
  if (label == "unknown") {
    frame_done();
    return;
  }
  call_module("sink", {frame_ref: message.frame_ref, pose: label, seq: count});
}
