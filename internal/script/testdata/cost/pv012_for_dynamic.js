// expect: PV012
// A counted for loop whose bound is a runtime value cannot be priced.
function event_received(message) {
  var total = 0;
  for (var i = 0; i < message.count; i++) {
    total += i;
  }
  metric("total", total);
  frame_done();
}
