// expect: PV012
// Writing the induction variable inside the body defeats the closed-form
// iteration count even though init/cond/post look counted.
function event_received(message) {
  for (var i = 0; i < 10; i++) {
    if (message.skip) {
      i = i - 1;
    }
  }
  frame_done();
}
