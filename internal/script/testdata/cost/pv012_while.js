// expect: PV012
// A while loop whose condition depends on runtime data has no statically
// inferable iteration bound.
var pending = 0;
function event_received(message) {
  pending = message.count;
  while (pending > 0) {
    pending--;
  }
  frame_done();
}
