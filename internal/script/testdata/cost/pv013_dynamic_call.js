// expect: PV013
// Calling through a local function value is a dynamic call the analysis
// cannot resolve to a bounded body.
function event_received(message) {
  var op = message.heavy ? heavy : light;
  op(message);
  frame_done();
}
function heavy(message) { call_service("detector", {frame_ref: message.frame_ref}); }
function light(message) { log(message.seq); }
