// expect: PV013
// Mutual recursion is a call-graph cycle: unboundable.
function even(n) { if (n == 0) { return true; } return odd(n - 1); }
function odd(n) { if (n == 0) { return false; } return even(n - 1); }
function event_received(message) {
  if (even(message.seq)) {
    frame_done();
    return;
  }
  call_module("sink", {seq: message.seq});
}
