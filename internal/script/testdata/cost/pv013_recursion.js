// expect: PV013
// Direct recursion makes the handler's worst-case cost unboundable.
function countdown(n) {
  if (n <= 0) {
    return 0;
  }
  return countdown(n - 1);
}
function event_received(message) {
  metric("depth", countdown(message.seq));
  frame_done();
}
