// Reads "pose", which the producer misspells as "pse".
function event_received(m) {
	var p = m.pose;
	log(p);
	frame_done();
}
