// Consumes every field the producer's helper builds.
function event_received(m) {
	log(m.label);
	metric("seq", m.seq);
	frame_done();
}
