// Builds the payload in a helper, exercising interprocedural inference.
function payload(m, label) {
	return {frame_ref: m.frame_ref, label: label, seq: m.seq};
}
function event_received(m) {
	call_module("sink", payload(m, "ok"));
}
