// expect: none
function event_received(m) {
	call_module("sink", {frame_ref: m.frame_ref, tag: "x"});
	frame_done();
}
