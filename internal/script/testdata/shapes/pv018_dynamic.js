// expect: PV018@5
function event_received(m) {
	var p = {frame_ref: m.frame_ref};
	p[m.key] = 1;
	call_module("sink", p);
}
