// Package script implements PipeScript, VideoPipe's embedded module
// language — the stand-in for the paper's Duktape JavaScript engine (§3).
//
// PipeScript is a JavaScript-like language executed by a small, sandboxed
// tree-walking interpreter. Each pipeline module runs in its own isolated
// Context (mirroring the paper's one-Duktape-context-per-module design)
// with host bindings for the Table-1 API: call_service, call_module, log
// and per-module state. Contexts enforce an instruction budget and a call
// stack limit so a buggy module cannot wedge its hosting device.
//
// Supported language surface: numbers (float64), strings, booleans, null,
// arrays, objects, first-class functions and closures; var/let/const, if /
// else, while, for, for-of, return, break, continue, throw, try/catch;
// arithmetic, comparison, logical operators, ternary, compound assignment;
// member and index access; and a small builtin library (len, push, keys,
// math helpers, JSON encode/decode, string utilities).
package script

import "fmt"

// tokenKind enumerates lexical token types.
type tokenKind int

// Token kinds. The zero value is invalid.
const (
	tokenInvalid tokenKind = iota
	tokenEOF
	tokenNumber
	tokenString
	tokenIdent
	tokenKeyword
	tokenPunct
)

func (k tokenKind) String() string {
	switch k {
	case tokenEOF:
		return "end of input"
	case tokenNumber:
		return "number"
	case tokenString:
		return "string"
	case tokenIdent:
		return "identifier"
	case tokenKeyword:
		return "keyword"
	case tokenPunct:
		return "punctuation"
	default:
		return "invalid token"
	}
}

// Position locates a token or node in the source text, 1-based.
type Position struct {
	Line int
	Col  int
}

// String renders the position as line:col.
func (p Position) String() string { return fmt.Sprintf("%d:%d", p.Line, p.Col) }

// token is one lexical token.
type token struct {
	kind tokenKind
	text string
	num  float64
	pos  Position
}

func (t token) String() string {
	if t.kind == tokenEOF {
		return "end of input"
	}
	return fmt.Sprintf("%q", t.text)
}

// keywords is the reserved-word set.
var keywords = map[string]bool{
	"var": true, "let": true, "const": true,
	"function": true, "return": true,
	"if": true, "else": true,
	"while": true, "for": true, "of": true,
	"break": true, "continue": true,
	"true": true, "false": true, "null": true, "undefined": true,
	"throw": true, "try": true, "catch": true, "finally": true,
	"switch": true, "case": true, "default": true,
	"new": true, "typeof": true, "delete": true,
}
