package script

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
)

// Value is a PipeScript runtime value. The concrete types are:
//
//	nil        — null/undefined
//	bool       — booleans
//	float64    — numbers
//	string     — strings
//	*Array     — arrays (reference semantics)
//	*Object    — objects (reference semantics)
//	*Function  — script closures
//	HostFunc   — Go functions exposed to scripts
type Value any

// Array is a script array with reference semantics.
type Array struct {
	// Elems holds the array's values.
	Elems []Value
}

// NewArray builds an array from values.
func NewArray(elems ...Value) *Array { return &Array{Elems: elems} }

// Object is a script object with reference semantics. Key iteration order is
// not stable; use SortedKeys for deterministic walks.
type Object struct {
	// Fields maps keys to values.
	Fields map[string]Value
}

// NewObject builds an empty object.
func NewObject() *Object { return &Object{Fields: make(map[string]Value)} }

// Get returns the field value, or nil when absent.
func (o *Object) Get(key string) Value { return o.Fields[key] }

// Set stores a field value.
func (o *Object) Set(key string, v Value) {
	if o.Fields == nil {
		o.Fields = make(map[string]Value)
	}
	o.Fields[key] = v
}

// SortedKeys returns the object's keys in sorted order.
func (o *Object) SortedKeys() []string {
	keys := make([]string, 0, len(o.Fields))
	for k := range o.Fields {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Function is a script-defined closure.
type Function struct {
	name   string
	params []string
	body   *blockStmt
	env    *environment
}

// Name reports the function's declared name, or "" for anonymous functions.
func (f *Function) Name() string { return f.name }

// HostFunc is a Go function callable from scripts.
type HostFunc func(args []Value) (Value, error)

// Truthy reports JavaScript-style truthiness: null, false, 0, NaN and ""
// are falsy; everything else is truthy.
func Truthy(v Value) bool {
	switch x := v.(type) {
	case nil:
		return false
	case bool:
		return x
	case float64:
		return x != 0 && !math.IsNaN(x)
	case string:
		return x != ""
	default:
		return true
	}
}

// TypeName reports the script-visible type name of v.
func TypeName(v Value) string {
	switch v.(type) {
	case nil:
		return "null"
	case bool:
		return "boolean"
	case float64:
		return "number"
	case string:
		return "string"
	case *Array:
		return "array"
	case *Object:
		return "object"
	case *Function, HostFunc:
		return "function"
	default:
		return fmt.Sprintf("host<%T>", v)
	}
}

// valuesEqual implements the == operator (strict, no coercion; arrays and
// objects compare by identity).
func valuesEqual(a, b Value) bool {
	switch x := a.(type) {
	case nil:
		return b == nil
	case bool:
		y, ok := b.(bool)
		return ok && x == y
	case float64:
		y, ok := b.(float64)
		return ok && x == y
	case string:
		y, ok := b.(string)
		return ok && x == y
	case *Array:
		y, ok := b.(*Array)
		return ok && x == y
	case *Object:
		y, ok := b.(*Object)
		return ok && x == y
	case *Function:
		y, ok := b.(*Function)
		return ok && x == y
	default:
		return false
	}
}

// Stringify renders v for display and string concatenation.
func Stringify(v Value) string {
	switch x := v.(type) {
	case nil:
		return "null"
	case bool:
		return strconv.FormatBool(x)
	case float64:
		return formatNumber(x)
	case string:
		return x
	case *Array:
		var b strings.Builder
		b.WriteByte('[')
		for i, e := range x.Elems {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(Stringify(e))
		}
		b.WriteByte(']')
		return b.String()
	case *Object:
		var b strings.Builder
		b.WriteByte('{')
		for i, k := range x.SortedKeys() {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(k)
			b.WriteString(": ")
			b.WriteString(Stringify(x.Fields[k]))
		}
		b.WriteByte('}')
		return b.String()
	case *Function:
		if x.name != "" {
			return "function " + x.name
		}
		return "function"
	case HostFunc:
		return "function (host)"
	default:
		return fmt.Sprintf("%v", v)
	}
}

// formatNumber renders numbers the way scripts expect: integers without a
// decimal point.
func formatNumber(f float64) string {
	if f == math.Trunc(f) && math.Abs(f) < 1e15 {
		return strconv.FormatInt(int64(f), 10)
	}
	return strconv.FormatFloat(f, 'g', -1, 64)
}

// FromGo converts a Go value (as produced by encoding/json or host code)
// into a script Value. Supported inputs: nil, bool, numeric types, string,
// []any, map[string]any, []byte (becomes string), and nested combinations.
// Unsupported types are passed through untouched as opaque host values.
func FromGo(v any) Value {
	switch x := v.(type) {
	case nil:
		return nil
	case bool, float64, string:
		return x
	case int:
		return float64(x)
	case int32:
		return float64(x)
	case int64:
		return float64(x)
	case uint64:
		return float64(x)
	case float32:
		return float64(x)
	case []byte:
		return string(x)
	case []any:
		arr := &Array{Elems: make([]Value, len(x))}
		for i, e := range x {
			arr.Elems[i] = FromGo(e)
		}
		return arr
	case map[string]any:
		obj := NewObject()
		for k, e := range x {
			obj.Set(k, FromGo(e))
		}
		return obj
	case []float64:
		arr := &Array{Elems: make([]Value, len(x))}
		for i, e := range x {
			arr.Elems[i] = e
		}
		return arr
	case []string:
		arr := &Array{Elems: make([]Value, len(x))}
		for i, e := range x {
			arr.Elems[i] = e
		}
		return arr
	default:
		return v
	}
}

// ToGo converts a script Value into plain Go data (nil, bool, float64,
// string, []any, map[string]any), suitable for encoding/json. Functions
// convert to nil.
func ToGo(v Value) any {
	switch x := v.(type) {
	case nil, bool, float64, string:
		return x
	case *Array:
		out := make([]any, len(x.Elems))
		for i, e := range x.Elems {
			out[i] = ToGo(e)
		}
		return out
	case *Object:
		out := make(map[string]any, len(x.Fields))
		for k, e := range x.Fields {
			out[k] = ToGo(e)
		}
		return out
	default:
		return nil
	}
}
