package services

import (
	"context"
	"fmt"
	"time"
)

// AutoScaler grows and shrinks a pool based on observed saturation — the
// paper's stated future work ("scale up services automatically based on
// workload", §7), included here as an extension. The saturation signal is
// sustained queueing: more requests in flight than the pool has worker
// capacity.
type AutoScaler struct {
	pool *Pool
	// Min and Max bound the instance count.
	Min, Max int
	// Interval is the control loop period.
	Interval time.Duration
	// UpAfter is how many consecutive saturated checks trigger a scale-up.
	UpAfter int
	// DownAfter is how many consecutive idle checks trigger a scale-down.
	DownAfter int

	upStreak   int
	downStreak int
	decisions  []string
}

// NewAutoScaler creates a scaler with the given bounds.
func NewAutoScaler(pool *Pool, minN, maxN int, interval time.Duration) (*AutoScaler, error) {
	if pool == nil {
		return nil, fmt.Errorf("services: autoscaler needs a pool")
	}
	if minN < 1 || maxN < minN {
		return nil, fmt.Errorf("services: bad autoscaler bounds [%d, %d]", minN, maxN)
	}
	if interval <= 0 {
		interval = 250 * time.Millisecond
	}
	return &AutoScaler{
		pool: pool, Min: minN, Max: maxN, Interval: interval,
		UpAfter: 3, DownAfter: 20,
	}, nil
}

// Decisions reports the scaling actions taken, for experiment logs.
func (a *AutoScaler) Decisions() []string {
	return append([]string(nil), a.decisions...)
}

// Run executes the control loop until ctx is done.
func (a *AutoScaler) Run(ctx context.Context) {
	ticker := time.NewTicker(a.Interval)
	defer ticker.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-ticker.C:
			a.Step(ctx)
		}
	}
}

// Step evaluates the saturation signal once and scales if warranted. It is
// exported so tests and experiments can drive the loop deterministically.
func (a *AutoScaler) Step(ctx context.Context) {
	size := a.pool.Size()
	capacity := size * maxI(a.pool.spec.Workers, 1)
	inFlight := a.pool.InFlight()

	switch {
	case inFlight > capacity:
		a.upStreak++
		a.downStreak = 0
	case inFlight == 0:
		a.downStreak++
		a.upStreak = 0
	default:
		a.upStreak = 0
		a.downStreak = 0
	}

	if a.upStreak >= a.UpAfter && size < a.Max {
		if err := a.pool.Scale(ctx, size+1); err == nil {
			a.decisions = append(a.decisions, fmt.Sprintf("up:%d->%d", size, size+1))
		}
		a.upStreak = 0
	}
	if a.downStreak >= a.DownAfter && size > a.Min {
		if err := a.pool.Scale(ctx, size-1); err == nil {
			a.decisions = append(a.decisions, fmt.Sprintf("down:%d->%d", size, size-1))
		}
		a.downStreak = 0
	}
}

func maxI(a, b int) int {
	if a > b {
		return a
	}
	return b
}
