package services

import (
	"context"
	"encoding/json"
	"fmt"
	"time"

	"videopipe/internal/frame"
	"videopipe/internal/wire"
)

// Multi-request batch extension to the wire protocol. A batch call packs
// several requests for ONE service into a single RPC so the per-call
// overhead (round trip, JPEG encode buffer churn) and the service's
// serialized section are paid once per batch:
//
//	request parts:  ["!batch"][service][args1][frame1]...[argsN][frameN]
//	response parts: [status1+payload1][frame1]...[statusN+payloadN][frameN]
//
// Frame parts are empty for frameless requests/responses. Each response
// status part leads with one byte — batchStatusOK followed by the result
// JSON, or batchStatusErr followed by the error text — so one slow or
// failing request never poisons its batchmates.

// batchMarker is the reserved first part of a batch message; real service
// names never start with '!'.
const batchMarker = "!batch"

const (
	batchStatusOK  = 0x00
	batchStatusErr = 0x01
)

// BatchItem is one request in a client batch call. The frame (if any) is
// borrowed — the caller keeps ownership, as with Call.
type BatchItem struct {
	Args  map[string]any
	Frame *frame.Frame
}

// handleBatch serves one batch message: decode every request, run them as
// one amortized pool invocation, and encode per-request results into a
// single response buffer.
func (s *Server) handleBatch(ctx context.Context, m wire.Message) (wire.Message, error) {
	if m.Len() < 4 || m.Len()%2 != 0 {
		return wire.Message{}, fmt.Errorf("services: malformed batch request (%d parts)", m.Len())
	}
	name := m.StringPart(1)
	s.mu.Lock()
	pool, ok := s.pools[name]
	s.mu.Unlock()
	if !ok {
		return wire.Message{}, fmt.Errorf("services: unknown service %q", name)
	}

	n := (m.Len() - 2) / 2
	reqs := make([]Request, n)
	decoded := make([]*frame.Frame, n)
	releaseDecoded := func() {
		for _, f := range decoded {
			if f != nil {
				f.Release()
			}
		}
	}
	for k := 0; k < n; k++ {
		if raw := m.Part(2 + 2*k); len(raw) > 0 {
			if err := json.Unmarshal(raw, &reqs[k].Args); err != nil {
				releaseDecoded()
				return wire.Message{}, fmt.Errorf("services: bad args in batch item %d: %w", k, err)
			}
		}
		if raw := m.Part(3 + 2*k); len(raw) > 0 {
			f, err := s.codec.Decode(raw)
			if err != nil {
				releaseDecoded()
				return wire.Message{}, fmt.Errorf("services: bad frame payload in batch item %d: %w", k, err)
			}
			reqs[k].Frame = f
			decoded[k] = f
		}
	}

	results := pool.InvokeBatch(ctx, reqs)
	// Decoded request frames exist only for this call; recycle any the
	// handler did not pass through as its response frame.
	for k, f := range decoded {
		if f != nil && f != results[k].Resp.Frame {
			f.Release()
		}
	}

	// One contiguous encode buffer for the whole response. It can't be
	// pooled: the responder still references it while writing after this
	// handler returns.
	var b wire.PartBuilder
	b.Reset(nil)
	for k := range results {
		appendBatchResult(&b, s.codec, &results[k])
	}
	return wire.Message{Parts: b.Parts()}, nil
}

// appendBatchResult encodes one result as its [status+payload][frame]
// part pair. Marshal/encode failures degrade to a per-request error
// status rather than failing the batch.
func appendBatchResult(b *wire.PartBuilder, codec frame.Codec, r *BatchResult) {
	if r.Err != nil {
		_ = b.AppendWith(func(dst []byte) ([]byte, error) {
			dst = append(dst, batchStatusErr)
			return append(dst, r.Err.Error()...), nil
		})
		b.Append(nil)
		if r.Resp.Frame != nil {
			r.Resp.Frame.Release()
		}
		return
	}
	resultJSON, err := json.Marshal(r.Resp.Result)
	if err != nil {
		_ = b.AppendWith(func(dst []byte) ([]byte, error) {
			dst = append(dst, batchStatusErr)
			return append(dst, fmt.Sprintf("services: marshal result: %v", err)...), nil
		})
		b.Append(nil)
		if r.Resp.Frame != nil {
			r.Resp.Frame.Release()
		}
		return
	}
	_ = b.AppendWith(func(dst []byte) ([]byte, error) {
		dst = append(dst, batchStatusOK)
		return append(dst, resultJSON...), nil
	})
	if rf := r.Resp.Frame; rf != nil {
		encErr := b.AppendWith(func(dst []byte) ([]byte, error) {
			return frame.AppendEncode(codec, dst, rf)
		})
		rf.Release()
		if encErr != nil {
			b.Append(nil)
		}
		return
	}
	b.Append(nil)
}

// CallBatch invokes a remote service once for several requests, encoding
// all frames into one buffer. It returns one BatchResult per item (same
// order) and a non-nil error only for whole-batch failures (breaker open,
// RPC failure, malformed response). The breaker records the batch as ONE
// outcome: a transport failure or all items failing counts as a single
// failure, never N.
func (c *Client) CallBatch(ctx context.Context, service string, items []BatchItem) ([]BatchResult, error) {
	if len(items) == 0 {
		return nil, nil
	}
	br := c.breaker(service)
	if !br.Allow() {
		return nil, fmt.Errorf("services: %s: %w", service, ErrBreakerOpen)
	}

	var b wire.PartBuilder
	var scratch []byte
	if v := encBufPool.Get(); v != nil {
		scratch = v.([]byte)
	}
	b.Reset(scratch)
	b.Append([]byte(batchMarker))
	b.Append([]byte(service))
	for k := range items {
		argsJSON, err := json.Marshal(items[k].Args)
		if err != nil {
			br.Cancel()
			encBufPool.Put(b.Buf()) //nolint:staticcheck // slice scratch, header alloc is noise
			return nil, fmt.Errorf("services: marshal args in batch item %d: %w", k, err)
		}
		b.Append(argsJSON)
		if f := items[k].Frame; f != nil {
			if err := b.AppendWith(func(dst []byte) ([]byte, error) {
				return frame.AppendEncode(c.codec, dst, f)
			}); err != nil {
				br.Cancel()
				encBufPool.Put(b.Buf()) //nolint:staticcheck // slice scratch, header alloc is noise
				return nil, fmt.Errorf("services: encode frame in batch item %d: %w", k, err)
			}
		} else {
			b.Append(nil)
		}
	}

	out, err := c.caller.Call(ctx, wire.Message{Parts: b.Parts()})
	// Safe to recycle: the caller copied the parts into the socket's
	// scratch during the synchronous write.
	encBufPool.Put(b.Buf()) //nolint:staticcheck // recycled after the synchronous write completes
	if err != nil {
		br.Record(false)
		return nil, err
	}
	if out.Len() != 2*len(items) {
		br.Record(false)
		return nil, fmt.Errorf("services: malformed batch response (%d parts for %d items)", out.Len(), len(items))
	}

	results := make([]BatchResult, len(items))
	failed := 0
	for k := range items {
		status := out.Part(2 * k)
		if len(status) < 1 {
			results[k].Err = fmt.Errorf("services: %s: empty batch status", service)
			failed++
			continue
		}
		if status[0] != batchStatusOK {
			results[k].Err = fmt.Errorf("services: %s", string(status[1:]))
			failed++
			continue
		}
		if payload := status[1:]; len(payload) > 0 {
			if err := json.Unmarshal(payload, &results[k].Resp.Result); err != nil {
				results[k].Err = fmt.Errorf("services: bad result payload: %w", err)
				failed++
				continue
			}
		}
		if fp := out.Part(2*k + 1); len(fp) > 0 {
			rf, err := c.codec.Decode(fp)
			if err != nil {
				results[k].Err = fmt.Errorf("services: bad result frame: %w", err)
				failed++
				continue
			}
			results[k].Resp.Frame = rf
		}
	}
	br.Record(failed < len(items))
	return results, nil
}

// clientCall is one Call parked in a client-side batcher's queue.
type clientCall struct {
	ctx  context.Context
	item BatchItem
	done chan clientOutcome
}

type clientOutcome struct {
	resp Response
	err  error
}

// clientBatcher coalesces concurrent Calls for one service into CallBatch
// invocations — the client-side mirror of the pool's batch collector.
type clientBatcher struct {
	c       *Client
	service string
	q       chan *clientCall
	stop    chan struct{}
	max     int
	linger  time.Duration
}

// SetBatching enables (max > 1) or disables (max <= 1) client-side
// batching for a service: concurrent Calls coalesce into one CallBatch,
// the first waiting at most linger for company. In-queue calls from a
// retired batcher still complete.
func (c *Client) SetBatching(service string, max int, linger time.Duration) {
	if linger < 0 {
		linger = 0
	}
	c.batchMu.Lock()
	defer c.batchMu.Unlock()
	if old, ok := c.batchers[service]; ok {
		close(old.stop)
		delete(c.batchers, service)
	}
	if max <= 1 {
		return
	}
	if c.batchers == nil {
		c.batchers = make(map[string]*clientBatcher)
	}
	cb := &clientBatcher{
		c:       c,
		service: service,
		q:       make(chan *clientCall, 4*max),
		stop:    make(chan struct{}),
		max:     max,
		linger:  linger,
	}
	c.batchers[service] = cb
	go cb.run()
}

// tryEnqueueBatch parks a Call in the service's batcher, returning nil
// when batching is off or the queue is full (caller takes the direct
// path). Held under batchMu so SetBatching never strands a call.
func (c *Client) tryEnqueueBatch(ctx context.Context, service string, args map[string]any, f *frame.Frame) *clientCall {
	c.batchMu.Lock()
	defer c.batchMu.Unlock()
	cb, ok := c.batchers[service]
	if !ok {
		return nil
	}
	cc := &clientCall{ctx: ctx, item: BatchItem{Args: args, Frame: f}, done: make(chan clientOutcome, 1)}
	select {
	case cb.q <- cc:
		return cc
	default:
		return nil
	}
}

// stopBatchers retires every batcher (Close path).
func (c *Client) stopBatchers() {
	c.batchMu.Lock()
	defer c.batchMu.Unlock()
	for svc, cb := range c.batchers {
		close(cb.stop)
		delete(c.batchers, svc)
	}
}

func (cb *clientBatcher) run() {
	for {
		var lead *clientCall
		select {
		case lead = <-cb.q:
		case <-cb.stop:
			// SetBatching/Close delist the batcher before closing stop, so
			// no new sends can race this drain.
			for {
				select {
				case cc := <-cb.q:
					cb.flush([]*clientCall{cc})
				default:
					return
				}
			}
		}

		batch := append(make([]*clientCall, 0, cb.max), lead)
		if cb.linger > 0 {
			timer := time.NewTimer(cb.linger)
			for len(batch) < cb.max {
				select {
				case cc := <-cb.q:
					batch = append(batch, cc)
					continue
				case <-timer.C:
				case <-cb.stop:
				}
				break
			}
			timer.Stop()
		}
	sweep:
		for len(batch) < cb.max {
			select {
			case cc := <-cb.q:
				batch = append(batch, cc)
			default:
				break sweep
			}
		}
		// Execute off the collector goroutine so the next batch can form
		// while this one is on the wire.
		go cb.flush(batch)
	}
}

// flush issues one CallBatch for the collected calls and delivers
// per-call outcomes. Calls whose context already expired fail without
// being sent.
func (cb *clientBatcher) flush(batch []*clientCall) {
	live := make([]*clientCall, 0, len(batch))
	for _, cc := range batch {
		if err := cc.ctx.Err(); err != nil {
			cc.done <- clientOutcome{err: fmt.Errorf("services: %s: %w", cb.service, err)}
			continue
		}
		live = append(live, cc)
	}
	if len(live) == 0 {
		return
	}
	items := make([]BatchItem, len(live))
	for k, cc := range live {
		items[k] = cc.item
	}
	results, err := cb.c.CallBatch(live[0].ctx, cb.service, items)
	if err != nil {
		for _, cc := range live {
			cc.done <- clientOutcome{err: err}
		}
		return
	}
	for k, cc := range live {
		cc.done <- clientOutcome{resp: results[k].Resp, err: results[k].Err}
	}
}
