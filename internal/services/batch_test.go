package services

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"videopipe/internal/frame"
	"videopipe/internal/netsim"
	"videopipe/internal/vision"
)

// TestInvokeBatchBitIdenticalToSequential pins the batching determinism
// contract for the shipped vision services: a batch must produce, byte for
// byte, the results the same requests produce one at a time. Each path
// gets its own pool so per-instance state (there is none for these
// services, and this proves it) cannot couple the runs.
func TestInvokeBatchBitIdenticalToSequential(t *testing.T) {
	for _, name := range []string{PoseDetector, FaceDetector, ObjectDetector} {
		t.Run(name, func(t *testing.T) {
			frames := []*frame.Frame{
				sceneFrame(t, vision.Squat, 0.2),
				sceneFrame(t, vision.Wave, 0.6),
				sceneFrame(t, vision.Clap, 0.4),
				frame.MustNew(64, 64), // empty scene: the not-found branch
			}
			reqs := make([]Request, len(frames))
			for k, f := range frames {
				reqs[k] = Request{Frame: f}
			}

			seq := poolFor(t, name)
			want := make([][]byte, len(reqs))
			for k := range reqs {
				resp, err := seq.Invoke(context.Background(), reqs[k])
				if err != nil {
					t.Fatalf("sequential Invoke %d: %v", k, err)
				}
				want[k] = mustJSON(t, resp.Result)
			}

			batched := poolFor(t, name)
			results := batched.InvokeBatch(context.Background(), reqs)
			if len(results) != len(reqs) {
				t.Fatalf("InvokeBatch returned %d results for %d requests", len(results), len(reqs))
			}
			for k, r := range results {
				if r.Err != nil {
					t.Fatalf("batched item %d: %v", k, r.Err)
				}
				if got := mustJSON(t, r.Resp.Result); string(got) != string(want[k]) {
					t.Errorf("item %d diverges:\nbatched:    %s\nsequential: %s", k, got, want[k])
				}
			}
		})
	}
}

func mustJSON(t *testing.T, v any) []byte {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	return b
}

// TestPoolCollectorCoalescesConcurrentInvokes exercises the dynamic batch
// collector end to end: concurrent Invokes park in the queue, ride one
// amortized invocation, and the batch counters show the coalescing.
func TestPoolCollectorCoalescesConcurrentInvokes(t *testing.T) {
	spec := Spec{
		Name: "batchy", Cost: 5 * time.Millisecond, Workers: 1, MaxBatch: 4,
		Handler: func(_ context.Context, req Request) (Response, error) {
			return Response{Result: map[string]any{"v": req.Args["v"]}}, nil
		},
	}
	p, err := NewPool(spec, 1, 1.0)
	if err != nil {
		t.Fatalf("NewPool: %v", err)
	}
	// The requested window clamps to the spec's envelope.
	p.SetBatching(100, 50*time.Millisecond)
	if got := p.BatchSize(); got != 4 {
		t.Fatalf("BatchSize = %d, want clamped to spec.MaxBatch 4", got)
	}

	var wg sync.WaitGroup
	var mu sync.Mutex
	got := make(map[float64]bool)
	for k := 0; k < 4; k++ {
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			resp, err := p.Invoke(context.Background(), Request{Args: map[string]any{"v": float64(k)}})
			if err != nil {
				t.Errorf("batched Invoke %d: %v", k, err)
				return
			}
			mu.Lock()
			got[resp.Result["v"].(float64)] = true
			mu.Unlock()
		}(k)
	}
	wg.Wait()
	if len(got) != 4 {
		t.Errorf("answers were not routed back per caller: %v", got)
	}
	if p.BatchedRequests() != 4 {
		t.Errorf("BatchedRequests = %d, want all 4 through the collector", p.BatchedRequests())
	}
	if b := p.Batches(); b == 0 || b >= 4 {
		t.Errorf("Batches = %d, want coalescing (0 < batches < 4)", b)
	}

	// Disabling returns Invoke to the direct path; the counters freeze.
	p.SetBatching(0, 0)
	if got := p.BatchSize(); got != 0 {
		t.Errorf("BatchSize after disable = %d", got)
	}
	before := p.Batches()
	if _, err := p.Invoke(context.Background(), Request{Args: map[string]any{"v": 9.0}}); err != nil {
		t.Fatalf("direct Invoke after disable: %v", err)
	}
	if p.Batches() != before {
		t.Error("direct Invoke after disable rode a batch")
	}
}

// echoServer starts a netsim server hosting one custom service and a
// client dialed at it.
func echoServer(t *testing.T, spec Spec) (*Pool, *Client) {
	t.Helper()
	nw := netsim.NewNetwork(netsim.LinkProfile{})
	pool, err := NewPool(spec, 1, 1.0)
	if err != nil {
		t.Fatalf("NewPool: %v", err)
	}
	srv, err := NewServer(nw.Host("desktop"), 0, map[string]*Pool{spec.Name: pool}, frame.JPEGCodec{Quality: 85})
	if err != nil {
		t.Fatalf("NewServer: %v", err)
	}
	t.Cleanup(func() { srv.Close() })
	client := NewClient(nw.Host("phone"), srv.Addr().String(), frame.JPEGCodec{Quality: 85})
	t.Cleanup(func() { client.Close() })
	return pool, client
}

// TestCallBatchRoundTripMixedStatus drives the wire batch format over
// netsim: one RPC carries three requests, and each comes back with its own
// status — a failing item never poisons its batchmates, and frames round
// trip per item.
func TestCallBatchRoundTripMixedStatus(t *testing.T) {
	spec := Spec{
		Name: "echo", Cost: time.Millisecond, MaxBatch: 8,
		Handler: func(_ context.Context, req Request) (Response, error) {
			if req.Args["fail"] == true {
				return Response{}, errors.New("boom")
			}
			resp := Response{Result: map[string]any{"v": req.Args["v"]}}
			if req.Frame != nil {
				resp.Frame = req.Frame.Clone()
			}
			return resp, nil
		},
	}
	pool, client := echoServer(t, spec)

	f := sceneFrame(t, vision.Squat, 0.5)
	results, err := client.CallBatch(context.Background(), "echo", []BatchItem{
		{Args: map[string]any{"v": 1.0}, Frame: f},
		{Args: map[string]any{"fail": true}},
		{Args: map[string]any{"v": 3.0}},
	})
	if err != nil {
		t.Fatalf("CallBatch: %v", err)
	}
	if len(results) != 3 {
		t.Fatalf("got %d results, want 3", len(results))
	}
	if results[0].Err != nil || results[0].Resp.Result["v"] != 1.0 {
		t.Errorf("item 0 = %+v, want v=1", results[0])
	}
	if results[0].Resp.Frame == nil {
		t.Error("item 0 lost its response frame")
	} else if w := results[0].Resp.Frame.Width; w != f.Width {
		t.Errorf("item 0 frame width %d, want %d", w, f.Width)
	}
	if results[1].Err == nil || results[1].Resp.Result != nil {
		t.Errorf("item 1 = %+v, want a per-item error", results[1])
	} else if msg := results[1].Err.Error(); !strings.Contains(msg, "boom") {
		t.Errorf("item 1 error %q does not carry the handler message", msg)
	}
	if results[2].Err != nil || results[2].Resp.Result["v"] != 3.0 || results[2].Resp.Frame != nil {
		t.Errorf("item 2 = %+v, want v=3 frameless", results[2])
	}
	// The whole batch was one pool invocation, not three.
	if pool.Batches() != 1 || pool.BatchedRequests() != 3 {
		t.Errorf("pool saw %d batches / %d batched requests, want 1 / 3", pool.Batches(), pool.BatchedRequests())
	}
}

// TestCallBatchBreakerRecordsOneOutcome pins the breaker contract: a batch
// is ONE call outcome. Ten failing items per batch must consume one
// failure from the threshold run, not ten — otherwise a single unlucky
// batch would open the circuit a healthy service.
func TestCallBatchBreakerRecordsOneOutcome(t *testing.T) {
	spec := Spec{
		Name: "flaky", MaxBatch: 16,
		Handler: func(_ context.Context, req Request) (Response, error) {
			if req.Args["fail"] == true {
				return Response{}, errors.New("down")
			}
			return Response{Result: map[string]any{"ok": true}}, nil
		},
	}
	_, client := echoServer(t, spec)

	failing := make([]BatchItem, 10)
	for k := range failing {
		failing[k] = BatchItem{Args: map[string]any{"fail": true}}
	}
	// threshold-1 all-failing batches: 10 item failures each, but only
	// DefaultBreakerThreshold-1 recorded outcomes — the circuit stays
	// closed.
	for i := 0; i < DefaultBreakerThreshold-1; i++ {
		if _, err := client.CallBatch(context.Background(), "flaky", failing); err != nil {
			t.Fatalf("batch %d rejected: %v", i, err)
		}
	}
	if st, ok := client.BreakerState("flaky"); !ok || st != BreakerClosed {
		t.Fatalf("breaker = %v after %d failed batches, want closed (one outcome per batch)",
			st, DefaultBreakerThreshold-1)
	}
	// One partially successful batch resets the run entirely.
	mixed := append([]BatchItem{{Args: map[string]any{"v": 1.0}}}, failing...)
	if _, err := client.CallBatch(context.Background(), "flaky", mixed); err != nil {
		t.Fatalf("mixed batch rejected: %v", err)
	}
	if st, _ := client.BreakerState("flaky"); st != BreakerClosed {
		t.Fatalf("breaker = %v after a partially successful batch, want closed", st)
	}
	// A full threshold run of failing batches opens it; the next call is
	// shed client-side.
	for i := 0; i < DefaultBreakerThreshold; i++ {
		if _, err := client.CallBatch(context.Background(), "flaky", failing); err != nil {
			t.Fatalf("batch %d rejected early: %v", i, err)
		}
	}
	if st, _ := client.BreakerState("flaky"); st != BreakerOpen {
		t.Fatalf("breaker = %v after a threshold run, want open", st)
	}
	if _, err := client.CallBatch(context.Background(), "flaky", failing); !errors.Is(err, ErrBreakerOpen) {
		t.Errorf("call against an open breaker returned %v, want ErrBreakerOpen", err)
	}
}

// TestClientAutoBatchingCoalescesCalls turns on client-side batching and
// checks that concurrent ordinary Calls ride the wire as batches — the
// server's pool counters are the ground truth — and that each caller still
// gets its own answer.
func TestClientAutoBatchingCoalescesCalls(t *testing.T) {
	spec := Spec{
		Name: "echo", Cost: time.Millisecond, MaxBatch: 8,
		Handler: func(_ context.Context, req Request) (Response, error) {
			return Response{Result: map[string]any{"v": req.Args["v"]}}, nil
		},
	}
	pool, client := echoServer(t, spec)
	client.SetBatching("echo", 4, 100*time.Millisecond)

	var wg sync.WaitGroup
	errs := make([]error, 4)
	for k := 0; k < 4; k++ {
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			resp, err := client.Call(context.Background(), "echo", map[string]any{"v": float64(k)}, nil)
			if err != nil {
				errs[k] = err
				return
			}
			if resp.Result["v"] != float64(k) {
				errs[k] = fmt.Errorf("got %v, want %d", resp.Result["v"], k)
			}
		}(k)
	}
	wg.Wait()
	for k, err := range errs {
		if err != nil {
			t.Errorf("call %d: %v", k, err)
		}
	}
	if pool.BatchedRequests() != 4 {
		t.Errorf("server saw %d batched requests, want all 4 coalesced", pool.BatchedRequests())
	}
	if b := pool.Batches(); b == 0 || b >= 4 {
		t.Errorf("server saw %d batches for 4 calls, want coalescing", b)
	}

	// Turning batching off routes Calls directly again.
	client.SetBatching("echo", 0, 0)
	before := pool.Batches()
	if _, err := client.Call(context.Background(), "echo", map[string]any{"v": 9.0}, nil); err != nil {
		t.Fatalf("direct Call after disable: %v", err)
	}
	if pool.Batches() != before {
		t.Error("Call after disable still rode a batch")
	}
}
