package services

import (
	"errors"
	"sync"
	"time"
)

// Circuit-breaker defaults. Tuned for the module hot path: a service that
// fails five frames in a row is almost certainly down, and half a second
// is long enough for the supervisor's restart to land before the next
// probe.
const (
	// DefaultBreakerThreshold is how many consecutive failures open the
	// breaker.
	DefaultBreakerThreshold = 5
	// DefaultBreakerCooldown is how long an open breaker waits before
	// letting a half-open probe through.
	DefaultBreakerCooldown = 500 * time.Millisecond
)

// ErrBreakerOpen is returned (wrapped) when a call is shed because the
// service's circuit is open — the caller failed fast instead of burning
// its RPC retry budget against a dead service.
var ErrBreakerOpen = errors.New("services: circuit open")

// BreakerState is one of the classic three circuit states.
type BreakerState int

// Breaker states. Enums start at one.
const (
	// BreakerClosed passes calls through, counting consecutive failures.
	BreakerClosed BreakerState = iota + 1
	// BreakerOpen sheds every call until the cooldown elapses.
	BreakerOpen
	// BreakerHalfOpen lets exactly one probe call through; its outcome
	// closes or re-opens the circuit.
	BreakerHalfOpen
)

// String names the state.
func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	default:
		return "unknown"
	}
}

// Breaker is a per-service circuit breaker: closed -> open after a run of
// consecutive failures, open -> half-open after a cooldown, half-open ->
// closed on a successful probe (or back to open on a failed one). It is
// safe for concurrent use.
type Breaker struct {
	mu        sync.Mutex
	state     BreakerState
	failures  int
	threshold int
	cooldown  time.Duration
	openedAt  time.Time
	probing   bool
	onChange  func(BreakerState)
}

// NewBreaker creates a closed breaker; non-positive arguments select the
// defaults.
func NewBreaker(threshold int, cooldown time.Duration) *Breaker {
	if threshold <= 0 {
		threshold = DefaultBreakerThreshold
	}
	if cooldown <= 0 {
		cooldown = DefaultBreakerCooldown
	}
	return &Breaker{state: BreakerClosed, threshold: threshold, cooldown: cooldown}
}

// OnStateChange installs a callback fired (outside the breaker lock is not
// guaranteed — keep it cheap) whenever the state transitions. Used by the
// device runtime to mark breaker metrics.
func (b *Breaker) OnStateChange(fn func(BreakerState)) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.onChange = fn
}

// State reports the current state.
func (b *Breaker) State() BreakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}

// setState transitions and notifies. Caller holds b.mu.
func (b *Breaker) setState(s BreakerState) {
	if b.state == s {
		return
	}
	b.state = s
	if b.onChange != nil {
		b.onChange(s)
	}
}

// Allow reports whether a call may proceed right now. An open breaker
// whose cooldown has elapsed transitions to half-open and admits exactly
// one probe; every other caller is shed until the probe resolves.
func (b *Breaker) Allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed:
		return true
	case BreakerOpen:
		if time.Since(b.openedAt) < b.cooldown {
			return false
		}
		b.setState(BreakerHalfOpen)
		b.probing = true
		return true
	case BreakerHalfOpen:
		if b.probing {
			return false
		}
		b.probing = true
		return true
	default:
		return true
	}
}

// Cancel releases an admitted call slot without recording an outcome —
// for calls that failed locally (bad arguments, encode errors) before the
// service was ever exercised. Without it, a half-open probe that dies
// client-side would wedge the breaker in its probing state.
func (b *Breaker) Cancel() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.probing = false
}

// Record reports a call outcome. Success closes the circuit and resets the
// failure run; failure extends the run, opening the circuit at the
// threshold — or immediately when it was the half-open probe that failed.
func (b *Breaker) Record(success bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.probing = false
	if success {
		b.failures = 0
		b.setState(BreakerClosed)
		return
	}
	b.failures++
	if b.state == BreakerHalfOpen || (b.state == BreakerClosed && b.failures >= b.threshold) {
		b.openedAt = time.Now()
		b.setState(BreakerOpen)
	}
}
