package services

import (
	"testing"
	"time"
)

func TestBreakerOpensAfterConsecutiveFailures(t *testing.T) {
	b := NewBreaker(3, time.Hour)
	for i := 0; i < 2; i++ {
		if !b.Allow() {
			t.Fatalf("closed breaker shed call %d", i)
		}
		b.Record(false)
	}
	if b.State() != BreakerClosed {
		t.Fatalf("state after 2 failures = %v, want closed", b.State())
	}
	if !b.Allow() {
		t.Fatal("closed breaker shed the third call")
	}
	b.Record(false)
	if b.State() != BreakerOpen {
		t.Fatalf("state after 3 failures = %v, want open", b.State())
	}
	if b.Allow() {
		t.Fatal("open breaker admitted a call before cooldown")
	}
}

func TestBreakerSuccessResetsFailureRun(t *testing.T) {
	b := NewBreaker(3, time.Hour)
	b.Record(false)
	b.Record(false)
	b.Record(true) // interleaved success: the run is not consecutive
	b.Record(false)
	b.Record(false)
	if b.State() != BreakerClosed {
		t.Fatalf("state = %v, want closed (failures were not consecutive)", b.State())
	}
}

func TestBreakerHalfOpenProbeSuccessCloses(t *testing.T) {
	b := NewBreaker(1, 20*time.Millisecond)
	b.Record(false)
	if b.State() != BreakerOpen {
		t.Fatalf("state = %v, want open", b.State())
	}
	time.Sleep(30 * time.Millisecond)
	if !b.Allow() {
		t.Fatal("cooldown elapsed but probe was shed")
	}
	if b.State() != BreakerHalfOpen {
		t.Fatalf("state = %v, want half-open", b.State())
	}
	// Only one probe at a time.
	if b.Allow() {
		t.Fatal("half-open breaker admitted a second concurrent probe")
	}
	b.Record(true)
	if b.State() != BreakerClosed {
		t.Fatalf("state after successful probe = %v, want closed", b.State())
	}
	if !b.Allow() {
		t.Fatal("closed breaker shed a call after recovery")
	}
}

func TestBreakerHalfOpenProbeFailureReopens(t *testing.T) {
	b := NewBreaker(1, 20*time.Millisecond)
	b.Record(false)
	time.Sleep(30 * time.Millisecond)
	if !b.Allow() {
		t.Fatal("cooldown elapsed but probe was shed")
	}
	b.Record(false)
	if b.State() != BreakerOpen {
		t.Fatalf("state after failed probe = %v, want open", b.State())
	}
	// Re-opened: cooldown restarts, calls shed again.
	if b.Allow() {
		t.Fatal("re-opened breaker admitted a call immediately")
	}
	// And a later probe can still recover it.
	time.Sleep(30 * time.Millisecond)
	if !b.Allow() {
		t.Fatal("second cooldown elapsed but probe was shed")
	}
	b.Record(true)
	if b.State() != BreakerClosed {
		t.Fatalf("state after recovery = %v, want closed", b.State())
	}
}

func TestBreakerStateChangeNotifications(t *testing.T) {
	b := NewBreaker(1, 10*time.Millisecond)
	var seen []BreakerState
	b.OnStateChange(func(s BreakerState) { seen = append(seen, s) })
	b.Record(false) // closed -> open
	time.Sleep(20 * time.Millisecond)
	b.Allow()      // open -> half-open
	b.Record(true) // half-open -> closed
	want := []BreakerState{BreakerOpen, BreakerHalfOpen, BreakerClosed}
	if len(seen) != len(want) {
		t.Fatalf("notifications = %v, want %v", seen, want)
	}
	for i := range want {
		if seen[i] != want[i] {
			t.Fatalf("notifications = %v, want %v", seen, want)
		}
	}
}
