package services

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"videopipe/internal/metrics"
)

// poolStats tracks the pool's live load levels and mirrors them into
// registry gauges once Instrument attaches them. All methods are safe on
// a nil receiver so a standalone Instance (no pool) costs nothing.
type poolStats struct {
	queued atomic.Int64
	busy   atomic.Int64
	depthG atomic.Pointer[metrics.Gauge]
	busyG  atomic.Pointer[metrics.Gauge]
}

func (s *poolStats) addQueued(d int64) {
	if s == nil {
		return
	}
	s.queued.Add(d)
	s.publish()
}

func (s *poolStats) addBusy(d int64) {
	if s == nil {
		return
	}
	s.busy.Add(d)
	s.publish()
}

func (s *poolStats) publish() {
	if g := s.depthG.Load(); g != nil {
		g.Set(s.queued.Load())
	}
	if g := s.busyG.Load(); g != nil {
		g.Set(s.busy.Load())
	}
}

// Instance models one running container of a service: bounded worker
// concurrency and a simulated compute cost with a partially serialized
// section.
type Instance struct {
	spec      Spec
	cpuFactor float64
	workers   chan struct{}
	serialMu  sync.Mutex
	inFlight  atomic.Int64
	calls     atomic.Uint64
	// stats points at the owning pool's load levels; nil for standalone
	// instances.
	stats *poolStats
}

// NewInstance starts an instance on hardware with the given CPU speed
// factor (1.0 = the paper's desktop; smaller is slower, so cost scales by
// 1/cpuFactor).
func NewInstance(spec Spec, cpuFactor float64) (*Instance, error) {
	if err := spec.validate(); err != nil {
		return nil, err
	}
	if cpuFactor <= 0 {
		return nil, fmt.Errorf("services: instance of %q: cpu factor %v must be positive", spec.Name, cpuFactor)
	}
	w := spec.Workers
	if w <= 0 {
		w = 1
	}
	return &Instance{
		spec:      spec,
		cpuFactor: cpuFactor,
		workers:   make(chan struct{}, w),
	}, nil
}

// Spec reports the instance's service spec.
func (i *Instance) Spec() Spec { return i.spec }

// InFlight reports requests currently executing or queued on this instance.
func (i *Instance) InFlight() int { return int(i.inFlight.Load()) }

// Calls reports the total requests served.
func (i *Instance) Calls() uint64 { return i.calls.Load() }

// Invoke executes one request: waits for a worker slot, runs the handler,
// then pads execution up to the simulated inference cost (with the serial
// fraction under the instance lock, where sharing pipelines contend).
func (i *Instance) Invoke(ctx context.Context, req Request) (Response, error) {
	i.inFlight.Add(1)
	defer i.inFlight.Add(-1)

	i.stats.addQueued(1)
	select {
	case i.workers <- struct{}{}:
		i.stats.addQueued(-1)
		i.stats.addBusy(1)
		defer func() { <-i.workers; i.stats.addBusy(-1) }()
	case <-ctx.Done():
		i.stats.addQueued(-1)
		return Response{}, fmt.Errorf("services: %s: %w", i.spec.Name, ctx.Err())
	}

	start := time.Now()
	resp, err := i.spec.Handler(ctx, req)
	if err != nil {
		return Response{}, fmt.Errorf("services: %s: %w", i.spec.Name, err)
	}
	i.calls.Add(1)

	cost := time.Duration(float64(i.spec.Cost) / i.cpuFactor)
	if remaining := cost - time.Since(start); remaining > 0 {
		serial := time.Duration(float64(remaining) * i.spec.SerialFraction)
		parallel := remaining - serial
		if parallel > 0 {
			if !sleepCtx(ctx, parallel) {
				return Response{}, fmt.Errorf("services: %s: %w", i.spec.Name, ctx.Err())
			}
		}
		if serial > 0 {
			i.serialMu.Lock()
			ok := sleepCtx(ctx, serial)
			i.serialMu.Unlock()
			if !ok {
				return Response{}, fmt.Errorf("services: %s: %w", i.spec.Name, ctx.Err())
			}
		}
	}
	return resp, nil
}

// invokeBatch executes several requests as one amortized invocation: one
// worker slot, handlers run sequentially in request order (the
// bit-determinism contract — identical inputs see identical handler
// state), the parallel share of the simulated cost is paid per request,
// and the serialized section is paid ONCE for the whole batch. That last
// part is the thermodynamic win: the per-instance serial lock bounds pool
// throughput at 1/serial without batching and batch/serial with it.
func (i *Instance) invokeBatch(ctx context.Context, reqs []Request) ([]Response, []error) {
	n := len(reqs)
	resps := make([]Response, n)
	errs := make([]error, n)
	fail := func(err error) ([]Response, []error) {
		for k := range errs {
			if errs[k] == nil {
				errs[k] = fmt.Errorf("services: %s: %w", i.spec.Name, err)
			}
		}
		return resps, errs
	}

	i.inFlight.Add(int64(n))
	defer i.inFlight.Add(int64(-n))

	i.stats.addQueued(int64(n))
	select {
	case i.workers <- struct{}{}:
		i.stats.addQueued(int64(-n))
		i.stats.addBusy(1)
		defer func() { <-i.workers; i.stats.addBusy(-1) }()
	case <-ctx.Done():
		i.stats.addQueued(int64(-n))
		return fail(ctx.Err())
	}

	start := time.Now()
	executed := 0
	for k := range reqs {
		resp, err := i.spec.Handler(ctx, reqs[k])
		if err != nil {
			errs[k] = fmt.Errorf("services: %s: %w", i.spec.Name, err)
			continue
		}
		resps[k] = resp
		executed++
		i.calls.Add(1)
	}

	cost := time.Duration(float64(i.spec.Cost) / i.cpuFactor)
	serial := time.Duration(float64(cost) * i.spec.SerialFraction)
	parallel := cost - serial
	if budget := time.Duration(executed)*parallel - time.Since(start); budget > 0 {
		if !sleepCtx(ctx, budget) {
			return fail(ctx.Err())
		}
	}
	if executed > 0 && serial > 0 {
		i.serialMu.Lock()
		ok := sleepCtx(ctx, serial)
		i.serialMu.Unlock()
		if !ok {
			return fail(ctx.Err())
		}
	}
	return resps, errs
}

func sleepCtx(ctx context.Context, d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-ctx.Done():
		return false
	}
}

// Pool is the scalable set of instances backing one service on one device —
// the unit that is shared across pipelines (paper §5.2.2) and scaled out
// when saturated.
type Pool struct {
	spec      Spec
	cpuFactor float64
	// StartupDelay models container spin-up time for newly scaled
	// instances.
	startupDelay time.Duration

	mu        sync.Mutex
	instances []*Instance
	next      int
	// gate is non-nil while the pool is paused (chaos: host device down);
	// Invoke blocks on it until Resume closes it.
	gate chan struct{}

	wait  *metrics.Histogram
	stats poolStats

	// batchMu guards the batch-collector lifecycle; batchQ is non-nil
	// while batching is enabled. Enqueue attempts hold batchMu so that
	// SetBatching can retire a collector without stranding a request.
	batchMu   sync.Mutex
	batchQ    chan *pendingCall
	batchStop chan struct{}
	batchMax  int

	batches     atomic.Uint64
	batchedReqs atomic.Uint64
}

// pendingCall is one request parked in the batch collector's queue.
type pendingCall struct {
	ctx  context.Context
	req  Request
	done chan batchOutcome
}

type batchOutcome struct {
	resp Response
	err  error
}

// BatchResult pairs one batched request's response with its error, so a
// batch can report per-request status.
type BatchResult struct {
	Resp Response
	Err  error
}

// NewPool creates a pool with n initial instances.
func NewPool(spec Spec, n int, cpuFactor float64) (*Pool, error) {
	if n <= 0 {
		return nil, fmt.Errorf("services: pool of %q needs at least one instance", spec.Name)
	}
	p := &Pool{spec: spec, cpuFactor: cpuFactor, wait: &metrics.Histogram{}}
	for k := 0; k < n; k++ {
		inst, err := NewInstance(spec, cpuFactor)
		if err != nil {
			return nil, err
		}
		inst.stats = &p.stats
		p.instances = append(p.instances, inst)
	}
	return p, nil
}

// Instrument mirrors the pool's live load levels into the registry's
// service.<name>.queue_depth and service.<name>.busy_workers gauges — the
// tuner's primary saturation signal.
func (p *Pool) Instrument(reg *metrics.Registry) {
	p.stats.depthG.Store(reg.Gauge("service." + p.spec.Name + ".queue_depth"))
	p.stats.busyG.Store(reg.Gauge("service." + p.spec.Name + ".busy_workers"))
	p.stats.publish()
}

// QueueDepth reports requests admitted to the pool but not yet holding a
// worker slot.
func (p *Pool) QueueDepth() int { return int(p.stats.queued.Load()) }

// BusyWorkers reports worker slots currently executing.
func (p *Pool) BusyWorkers() int { return int(p.stats.busy.Load()) }

// SetStartupDelay configures simulated container spin-up for future Scale
// calls.
func (p *Pool) SetStartupDelay(d time.Duration) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.startupDelay = d
}

// Name reports the pooled service name.
func (p *Pool) Name() string { return p.spec.Name }

// Spec reports the pooled service's spec — the tuner reads its batching
// and scaling bounds from here.
func (p *Pool) Spec() Spec { return p.spec }

// Size reports the current instance count.
func (p *Pool) Size() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.instances)
}

// InFlight reports requests executing or queued across all instances.
func (p *Pool) InFlight() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	total := 0
	for _, i := range p.instances {
		total += i.InFlight()
	}
	return total
}

// Calls reports total requests served across all instances.
func (p *Pool) Calls() uint64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	var total uint64
	for _, i := range p.instances {
		total += i.Calls()
	}
	return total
}

// WaitStats reports the distribution of time requests spent waiting before
// execution began, the autoscaler's saturation signal.
func (p *Pool) WaitStats() metrics.Snapshot { return p.wait.Snapshot() }

// Scale adjusts the pool to n instances. Growth pays the startup delay per
// new instance (concurrently); shrinking is immediate — in-flight requests
// on removed instances complete, since instances are only garbage once
// callers drain.
func (p *Pool) Scale(ctx context.Context, n int) error {
	if n <= 0 {
		return fmt.Errorf("services: cannot scale %q to %d instances", p.spec.Name, n)
	}
	p.mu.Lock()
	cur := len(p.instances)
	delay := p.startupDelay
	p.mu.Unlock()

	if n <= cur {
		p.mu.Lock()
		p.instances = p.instances[:n]
		if p.next >= n {
			p.next = 0
		}
		p.mu.Unlock()
		return nil
	}

	if delay > 0 {
		if !sleepCtx(ctx, delay) {
			return fmt.Errorf("services: scaling %q: %w", p.spec.Name, ctx.Err())
		}
	}
	for k := cur; k < n; k++ {
		inst, err := NewInstance(p.spec, p.cpuFactor)
		if err != nil {
			return err
		}
		inst.stats = &p.stats
		p.mu.Lock()
		p.instances = append(p.instances, inst)
		p.mu.Unlock()
	}
	return nil
}

// Kill removes up to k instances from the pool — the chaos engine's
// service-failure hook. Unlike Scale it may empty the pool entirely, after
// which Invoke fails until the pool is restored with Scale. In-flight
// requests on removed instances complete (instances are only garbage once
// callers drain). It returns the number of instances removed.
func (p *Pool) Kill(k int) int {
	p.mu.Lock()
	defer p.mu.Unlock()
	if k > len(p.instances) {
		k = len(p.instances)
	}
	if k <= 0 {
		return 0
	}
	p.instances = p.instances[:len(p.instances)-k]
	if p.next >= len(p.instances) {
		p.next = 0
	}
	return k
}

// Pause freezes the pool: Invoke blocks (bounded by its context) until
// Resume. It models the hosting device going down with requests in flight.
func (p *Pool) Pause() {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.gate == nil {
		p.gate = make(chan struct{})
	}
}

// Resume releases a paused pool; blocked Invokes proceed.
func (p *Pool) Resume() {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.gate != nil {
		close(p.gate)
		p.gate = nil
	}
}

// Paused reports whether the pool is currently gated. The supervisor uses
// it to tell a hung host (don't restart — it will resume) from a dead pool
// (restart now).
func (p *Pool) Paused() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.gate != nil
}

// Invoke dispatches a request to the least-loaded instance, or parks it
// in the batch collector's queue when batching is enabled (overflow and
// disabled both fall back to the direct path).
func (p *Pool) Invoke(ctx context.Context, req Request) (Response, error) {
	if err := p.waitGate(ctx); err != nil {
		return Response{}, err
	}

	enqueued := time.Now()
	if pc := p.tryEnqueueBatch(ctx, req); pc != nil {
		// The collector owns completion; block unconditionally so frame
		// ownership never forks (the collector checks pc.ctx per item).
		out := <-pc.done
		p.observeWait(enqueued)
		return out.resp, out.err
	}

	best, err := p.pick()
	if err != nil {
		return Response{}, err
	}
	resp, err := best.Invoke(ctx, req)
	p.observeWait(enqueued)
	return resp, err
}

// InvokeBatch executes an already-formed batch (the server's wire batch
// path) on one instance, amortizing the serialized section. Results carry
// per-request status; the returned slice always has len(reqs) entries.
func (p *Pool) InvokeBatch(ctx context.Context, reqs []Request) []BatchResult {
	out := make([]BatchResult, len(reqs))
	if len(reqs) == 0 {
		return out
	}
	fail := func(err error) []BatchResult {
		for k := range out {
			out[k].Err = err
		}
		return out
	}
	if err := p.waitGate(ctx); err != nil {
		return fail(err)
	}
	enqueued := time.Now()
	inst, err := p.pick()
	if err != nil {
		return fail(err)
	}
	p.batches.Add(1)
	p.batchedReqs.Add(uint64(len(reqs)))
	resps, errs := inst.invokeBatch(ctx, reqs)
	for k := range out {
		out[k] = BatchResult{Resp: resps[k], Err: errs[k]}
	}
	p.observeWait(enqueued)
	return out
}

// waitGate blocks while the pool is paused.
func (p *Pool) waitGate(ctx context.Context) error {
	p.mu.Lock()
	gate := p.gate
	p.mu.Unlock()
	if gate != nil {
		select {
		case <-gate:
		case <-ctx.Done():
			return fmt.Errorf("services: %s paused: %w", p.spec.Name, ctx.Err())
		}
	}
	return nil
}

// pick selects the least-loaded instance.
func (p *Pool) pick() (*Instance, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if len(p.instances) == 0 {
		return nil, fmt.Errorf("services: pool %q has no instances", p.spec.Name)
	}
	best := p.instances[p.next%len(p.instances)]
	for _, inst := range p.instances {
		if inst.InFlight() < best.InFlight() {
			best = inst
		}
	}
	p.next++
	return best, nil
}

// observeWait records queueing/contention: anything beyond the nominal
// cost was waiting.
func (p *Pool) observeWait(enqueued time.Time) {
	nominal := time.Duration(float64(p.spec.Cost) / p.cpuFactor)
	if extra := time.Since(enqueued) - nominal; extra > 0 {
		p.wait.Observe(extra)
	} else {
		p.wait.Observe(0)
	}
}

// SetBatching configures the pool's dynamic batch collector: up to max
// queued requests are coalesced into one invocation, the first waiting at
// most linger for company. max is clamped to the spec's MaxBatch; an
// effective max <= 1 disables batching (the default). Safe to call at any
// time; in-queue requests from a retired collector still complete.
func (p *Pool) SetBatching(max int, linger time.Duration) {
	if p.spec.MaxBatch < max {
		max = p.spec.MaxBatch
	}
	if linger < 0 {
		linger = 0
	}
	p.batchMu.Lock()
	defer p.batchMu.Unlock()
	if p.batchStop != nil {
		close(p.batchStop)
		p.batchStop = nil
		p.batchQ = nil
	}
	p.batchMax = 0
	if max <= 1 {
		return
	}
	q := make(chan *pendingCall, 4*max)
	stop := make(chan struct{})
	p.batchQ, p.batchStop, p.batchMax = q, stop, max
	go p.collect(q, stop, max, linger)
}

// BatchSize reports the collector's current max batch size (0 when
// batching is disabled).
func (p *Pool) BatchSize() int {
	p.batchMu.Lock()
	defer p.batchMu.Unlock()
	return p.batchMax
}

// Batches reports how many amortized batch invocations ran.
func (p *Pool) Batches() uint64 { return p.batches.Load() }

// BatchedRequests reports how many requests rode in those batches.
func (p *Pool) BatchedRequests() uint64 { return p.batchedReqs.Load() }

// tryEnqueueBatch parks the request in the collector queue, returning nil
// when batching is off or the queue is full (caller takes the direct
// path). The enqueue happens under batchMu so SetBatching can never
// retire a collector with a request about to land in its queue.
func (p *Pool) tryEnqueueBatch(ctx context.Context, req Request) *pendingCall {
	p.batchMu.Lock()
	defer p.batchMu.Unlock()
	if p.batchQ == nil {
		return nil
	}
	pc := &pendingCall{ctx: ctx, req: req, done: make(chan batchOutcome, 1)}
	select {
	case p.batchQ <- pc:
		return pc
	default:
		return nil
	}
}

// collect is the batch collector loop: take one request, linger for more
// up to max, run them as one invocation. On stop it drains stragglers so
// no parked request is stranded.
func (p *Pool) collect(q chan *pendingCall, stop chan struct{}, max int, linger time.Duration) {
	for {
		var lead *pendingCall
		select {
		case lead = <-q:
		case <-stop:
			// SetBatching nils the queue before closing stop, so no new
			// sends can race this drain.
			for {
				select {
				case pc := <-q:
					p.runBatch([]*pendingCall{pc})
				default:
					return
				}
			}
		}

		batch := append(make([]*pendingCall, 0, max), lead)
		if linger > 0 {
			timer := time.NewTimer(linger)
			for len(batch) < max {
				select {
				case pc := <-q:
					batch = append(batch, pc)
					continue
				case <-timer.C:
				case <-stop:
				}
				break
			}
			timer.Stop()
		}
		// Sweep anything already queued, lingering or not.
	sweep:
		for len(batch) < max {
			select {
			case pc := <-q:
				batch = append(batch, pc)
			default:
				break sweep
			}
		}
		// Execute off the collector goroutine so the next batch can form
		// (and run on another instance/worker) while this one executes.
		go p.runBatch(batch)
	}
}

// runBatch executes one collected batch on the least-loaded instance and
// delivers per-request outcomes. Requests whose context already expired
// are failed without executing (their caller is still parked on done and
// owns the frame after delivery).
func (p *Pool) runBatch(batch []*pendingCall) {
	live := make([]*pendingCall, 0, len(batch))
	for _, pc := range batch {
		if err := pc.ctx.Err(); err != nil {
			pc.done <- batchOutcome{err: fmt.Errorf("services: %s: %w", p.spec.Name, err)}
			continue
		}
		live = append(live, pc)
	}
	if len(live) == 0 {
		return
	}
	inst, err := p.pick()
	if err != nil {
		for _, pc := range live {
			pc.done <- batchOutcome{err: err}
		}
		return
	}
	reqs := make([]Request, len(live))
	for k, pc := range live {
		reqs[k] = pc.req
	}
	p.batches.Add(1)
	p.batchedReqs.Add(uint64(len(live)))
	resps, errs := inst.invokeBatch(live[0].ctx, reqs)
	for k, pc := range live {
		pc.done <- batchOutcome{resp: resps[k], err: errs[k]}
	}
}
