package services

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"videopipe/internal/metrics"
)

// Instance models one running container of a service: bounded worker
// concurrency and a simulated compute cost with a partially serialized
// section.
type Instance struct {
	spec      Spec
	cpuFactor float64
	workers   chan struct{}
	serialMu  sync.Mutex
	inFlight  atomic.Int64
	calls     atomic.Uint64
}

// NewInstance starts an instance on hardware with the given CPU speed
// factor (1.0 = the paper's desktop; smaller is slower, so cost scales by
// 1/cpuFactor).
func NewInstance(spec Spec, cpuFactor float64) (*Instance, error) {
	if err := spec.validate(); err != nil {
		return nil, err
	}
	if cpuFactor <= 0 {
		return nil, fmt.Errorf("services: instance of %q: cpu factor %v must be positive", spec.Name, cpuFactor)
	}
	w := spec.Workers
	if w <= 0 {
		w = 1
	}
	return &Instance{
		spec:      spec,
		cpuFactor: cpuFactor,
		workers:   make(chan struct{}, w),
	}, nil
}

// Spec reports the instance's service spec.
func (i *Instance) Spec() Spec { return i.spec }

// InFlight reports requests currently executing or queued on this instance.
func (i *Instance) InFlight() int { return int(i.inFlight.Load()) }

// Calls reports the total requests served.
func (i *Instance) Calls() uint64 { return i.calls.Load() }

// Invoke executes one request: waits for a worker slot, runs the handler,
// then pads execution up to the simulated inference cost (with the serial
// fraction under the instance lock, where sharing pipelines contend).
func (i *Instance) Invoke(ctx context.Context, req Request) (Response, error) {
	i.inFlight.Add(1)
	defer i.inFlight.Add(-1)

	select {
	case i.workers <- struct{}{}:
		defer func() { <-i.workers }()
	case <-ctx.Done():
		return Response{}, fmt.Errorf("services: %s: %w", i.spec.Name, ctx.Err())
	}

	start := time.Now()
	resp, err := i.spec.Handler(ctx, req)
	if err != nil {
		return Response{}, fmt.Errorf("services: %s: %w", i.spec.Name, err)
	}
	i.calls.Add(1)

	cost := time.Duration(float64(i.spec.Cost) / i.cpuFactor)
	if remaining := cost - time.Since(start); remaining > 0 {
		serial := time.Duration(float64(remaining) * i.spec.SerialFraction)
		parallel := remaining - serial
		if parallel > 0 {
			if !sleepCtx(ctx, parallel) {
				return Response{}, fmt.Errorf("services: %s: %w", i.spec.Name, ctx.Err())
			}
		}
		if serial > 0 {
			i.serialMu.Lock()
			ok := sleepCtx(ctx, serial)
			i.serialMu.Unlock()
			if !ok {
				return Response{}, fmt.Errorf("services: %s: %w", i.spec.Name, ctx.Err())
			}
		}
	}
	return resp, nil
}

func sleepCtx(ctx context.Context, d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-ctx.Done():
		return false
	}
}

// Pool is the scalable set of instances backing one service on one device —
// the unit that is shared across pipelines (paper §5.2.2) and scaled out
// when saturated.
type Pool struct {
	spec      Spec
	cpuFactor float64
	// StartupDelay models container spin-up time for newly scaled
	// instances.
	startupDelay time.Duration

	mu        sync.Mutex
	instances []*Instance
	next      int
	// gate is non-nil while the pool is paused (chaos: host device down);
	// Invoke blocks on it until Resume closes it.
	gate chan struct{}

	wait *metrics.Histogram
}

// NewPool creates a pool with n initial instances.
func NewPool(spec Spec, n int, cpuFactor float64) (*Pool, error) {
	if n <= 0 {
		return nil, fmt.Errorf("services: pool of %q needs at least one instance", spec.Name)
	}
	p := &Pool{spec: spec, cpuFactor: cpuFactor, wait: &metrics.Histogram{}}
	for k := 0; k < n; k++ {
		inst, err := NewInstance(spec, cpuFactor)
		if err != nil {
			return nil, err
		}
		p.instances = append(p.instances, inst)
	}
	return p, nil
}

// SetStartupDelay configures simulated container spin-up for future Scale
// calls.
func (p *Pool) SetStartupDelay(d time.Duration) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.startupDelay = d
}

// Name reports the pooled service name.
func (p *Pool) Name() string { return p.spec.Name }

// Size reports the current instance count.
func (p *Pool) Size() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.instances)
}

// InFlight reports requests executing or queued across all instances.
func (p *Pool) InFlight() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	total := 0
	for _, i := range p.instances {
		total += i.InFlight()
	}
	return total
}

// Calls reports total requests served across all instances.
func (p *Pool) Calls() uint64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	var total uint64
	for _, i := range p.instances {
		total += i.Calls()
	}
	return total
}

// WaitStats reports the distribution of time requests spent waiting before
// execution began, the autoscaler's saturation signal.
func (p *Pool) WaitStats() metrics.Snapshot { return p.wait.Snapshot() }

// Scale adjusts the pool to n instances. Growth pays the startup delay per
// new instance (concurrently); shrinking is immediate — in-flight requests
// on removed instances complete, since instances are only garbage once
// callers drain.
func (p *Pool) Scale(ctx context.Context, n int) error {
	if n <= 0 {
		return fmt.Errorf("services: cannot scale %q to %d instances", p.spec.Name, n)
	}
	p.mu.Lock()
	cur := len(p.instances)
	delay := p.startupDelay
	p.mu.Unlock()

	if n <= cur {
		p.mu.Lock()
		p.instances = p.instances[:n]
		if p.next >= n {
			p.next = 0
		}
		p.mu.Unlock()
		return nil
	}

	if delay > 0 {
		if !sleepCtx(ctx, delay) {
			return fmt.Errorf("services: scaling %q: %w", p.spec.Name, ctx.Err())
		}
	}
	for k := cur; k < n; k++ {
		inst, err := NewInstance(p.spec, p.cpuFactor)
		if err != nil {
			return err
		}
		p.mu.Lock()
		p.instances = append(p.instances, inst)
		p.mu.Unlock()
	}
	return nil
}

// Kill removes up to k instances from the pool — the chaos engine's
// service-failure hook. Unlike Scale it may empty the pool entirely, after
// which Invoke fails until the pool is restored with Scale. In-flight
// requests on removed instances complete (instances are only garbage once
// callers drain). It returns the number of instances removed.
func (p *Pool) Kill(k int) int {
	p.mu.Lock()
	defer p.mu.Unlock()
	if k > len(p.instances) {
		k = len(p.instances)
	}
	if k <= 0 {
		return 0
	}
	p.instances = p.instances[:len(p.instances)-k]
	if p.next >= len(p.instances) {
		p.next = 0
	}
	return k
}

// Pause freezes the pool: Invoke blocks (bounded by its context) until
// Resume. It models the hosting device going down with requests in flight.
func (p *Pool) Pause() {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.gate == nil {
		p.gate = make(chan struct{})
	}
}

// Resume releases a paused pool; blocked Invokes proceed.
func (p *Pool) Resume() {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.gate != nil {
		close(p.gate)
		p.gate = nil
	}
}

// Paused reports whether the pool is currently gated. The supervisor uses
// it to tell a hung host (don't restart — it will resume) from a dead pool
// (restart now).
func (p *Pool) Paused() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.gate != nil
}

// Invoke dispatches a request to the least-loaded instance.
func (p *Pool) Invoke(ctx context.Context, req Request) (Response, error) {
	p.mu.Lock()
	gate := p.gate
	p.mu.Unlock()
	if gate != nil {
		select {
		case <-gate:
		case <-ctx.Done():
			return Response{}, fmt.Errorf("services: %s paused: %w", p.spec.Name, ctx.Err())
		}
	}

	p.mu.Lock()
	if len(p.instances) == 0 {
		p.mu.Unlock()
		return Response{}, fmt.Errorf("services: pool %q has no instances", p.spec.Name)
	}
	best := p.instances[p.next%len(p.instances)]
	for _, inst := range p.instances {
		if inst.InFlight() < best.InFlight() {
			best = inst
		}
	}
	p.next++
	p.mu.Unlock()

	enqueued := time.Now()
	resp, err := best.Invoke(ctx, req)
	// Wait time approximation: anything beyond the nominal cost was
	// queueing/contention.
	nominal := time.Duration(float64(p.spec.Cost) / p.cpuFactor)
	if extra := time.Since(enqueued) - nominal; extra > 0 {
		p.wait.Observe(extra)
	} else {
		p.wait.Observe(0)
	}
	return resp, err
}
