package services

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"sync"

	"videopipe/internal/frame"
	"videopipe/internal/wire"
)

// Wire protocol for remote service calls (the baseline architecture's "API
// calls to a remote server", paper Fig. 5):
//
//	request parts:  [service name][JSON args][encoded frame?]
//	response parts: [JSON result][encoded frame?]
//
// Frames are codec-encoded for transfer — this encode/transfer/decode cost
// is exactly what co-location avoids.

// Server exposes a set of service pools over the wire layer.
type Server struct {
	responder *wire.Responder
	mu        sync.Mutex
	pools     map[string]*Pool
	codec     frame.Codec
}

// NewServer binds a service server at port (0 = ephemeral) serving the
// given pools.
func NewServer(t wire.Transport, port int, pools map[string]*Pool, codec frame.Codec) (*Server, error) {
	if codec == nil {
		codec = frame.JPEGCodec{}
	}
	if len(pools) == 0 {
		return nil, fmt.Errorf("services: server needs at least one pool")
	}
	owned := make(map[string]*Pool, len(pools))
	for n, p := range pools {
		owned[n] = p
	}
	s := &Server{pools: owned, codec: codec}
	resp, err := wire.ListenResponder(t, port, s.handle)
	if err != nil {
		return nil, fmt.Errorf("services: server: %w", err)
	}
	s.responder = resp
	return s, nil
}

// AddPool exposes another pool on a running server — the failover path:
// when a service is redeployed onto a device whose server is already
// bound, the new pool joins it instead of leaking a second listener.
func (s *Server) AddPool(name string, p *Pool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.pools[name] = p
}

// Addr reports the server's bound address.
func (s *Server) Addr() net.Addr { return s.responder.Addr() }

// Close stops serving.
func (s *Server) Close() error { return s.responder.Close() }

func (s *Server) handle(ctx context.Context, m wire.Message) (wire.Message, error) {
	if m.Len() < 2 {
		return wire.Message{}, fmt.Errorf("services: malformed request (%d parts)", m.Len())
	}
	if m.StringPart(0) == batchMarker {
		return s.handleBatch(ctx, m)
	}
	name := m.StringPart(0)
	s.mu.Lock()
	pool, ok := s.pools[name]
	s.mu.Unlock()
	if !ok {
		return wire.Message{}, fmt.Errorf("services: unknown service %q", name)
	}

	var args map[string]any
	if raw := m.Part(1); len(raw) > 0 {
		if err := json.Unmarshal(raw, &args); err != nil {
			return wire.Message{}, fmt.Errorf("services: bad args: %w", err)
		}
	}

	req := Request{Args: args}
	if m.Len() >= 3 && len(m.Part(2)) > 0 {
		f, err := s.codec.Decode(m.Part(2))
		if err != nil {
			return wire.Message{}, fmt.Errorf("services: bad frame payload: %w", err)
		}
		req.Frame = f
	}

	resp, err := pool.Invoke(ctx, req)
	// The decoded request frame exists only for this call; recycle it once
	// the handler is done (handlers that keep pixels clone the frame, so a
	// same-frame response would be an ownership bug — guard regardless).
	if req.Frame != nil && req.Frame != resp.Frame {
		req.Frame.Release()
	}
	if err != nil {
		return wire.Message{}, err
	}

	resultJSON, err := json.Marshal(resp.Result)
	if err != nil {
		return wire.Message{}, fmt.Errorf("services: marshal result: %w", err)
	}
	out := wire.NewMessage(resultJSON)
	if resp.Frame != nil {
		// The encode buffer can't be pooled here: the responder still
		// references it while writing after this handler returns.
		data, err := s.codec.Encode(resp.Frame)
		resp.Frame.Release()
		if err != nil {
			return wire.Message{}, fmt.Errorf("services: encode result frame: %w", err)
		}
		out.Parts = append(out.Parts, data)
	}
	return out, nil
}

// Client calls remote services over the wire layer. Each service called
// through the client gets its own circuit breaker: when a service fails
// repeatedly (dead pool, partitioned host), the breaker opens and calls
// shed immediately instead of burning the RPC retry budget per frame; a
// half-open probe rediscovers the service once it heals.
type Client struct {
	caller *wire.Caller
	codec  frame.Codec

	breakerMu sync.Mutex
	breakers  map[string]*Breaker
	onState   func(service string, s BreakerState)

	// batchMu guards the per-service client batchers (batch.go).
	batchMu  sync.Mutex
	batchers map[string]*clientBatcher
}

// NewClient creates a client for the service server at address.
func NewClient(t wire.Transport, address string, codec frame.Codec) *Client {
	if codec == nil {
		codec = frame.JPEGCodec{}
	}
	return &Client{
		caller:   wire.DialCaller(t, address),
		codec:    codec,
		breakers: make(map[string]*Breaker),
	}
}

// SetBreakerNotify installs a callback fired whenever any per-service
// breaker changes state. It applies to breakers created after the call;
// install it before the first Call.
func (c *Client) SetBreakerNotify(fn func(service string, s BreakerState)) {
	c.breakerMu.Lock()
	defer c.breakerMu.Unlock()
	c.onState = fn
}

// BreakerState reports the circuit state for a service; ok is false when
// the service has never been called through this client.
func (c *Client) BreakerState(service string) (BreakerState, bool) {
	c.breakerMu.Lock()
	defer c.breakerMu.Unlock()
	b, ok := c.breakers[service]
	if !ok {
		return 0, false
	}
	return b.State(), true
}

// breaker returns (creating on first use) the circuit for a service.
func (c *Client) breaker(service string) *Breaker {
	c.breakerMu.Lock()
	defer c.breakerMu.Unlock()
	b, ok := c.breakers[service]
	if !ok {
		b = NewBreaker(0, 0)
		if fn := c.onState; fn != nil {
			svc := service
			b.OnStateChange(func(s BreakerState) { fn(svc, s) })
		}
		c.breakers[service] = b
	}
	return b
}

// encBufPool recycles frame-encode buffers across Calls. A buffer is safe
// to recycle as soon as Call returns: the caller has copied it into the
// socket's scratch during the (synchronous) write.
var encBufPool sync.Pool

// Call invokes a remote service, encoding the frame (if any) for transfer.
// The input frame is borrowed — the caller keeps ownership.
func (c *Client) Call(ctx context.Context, service string, args map[string]any, f *frame.Frame) (Response, error) {
	if cc := c.tryEnqueueBatch(ctx, service, args, f); cc != nil {
		// The batcher owns completion; the frame stays borrowed until the
		// outcome lands (CallBatch encodes it before delivering).
		out := <-cc.done
		return out.resp, out.err
	}
	br := c.breaker(service)
	if !br.Allow() {
		return Response{}, fmt.Errorf("services: %s: %w", service, ErrBreakerOpen)
	}
	argsJSON, err := json.Marshal(args)
	if err != nil {
		br.Cancel()
		return Response{}, fmt.Errorf("services: marshal args: %w", err)
	}
	req := wire.NewMessage([]byte(service), argsJSON)
	if f != nil {
		var scratch []byte
		if v := encBufPool.Get(); v != nil {
			scratch = v.([]byte)
		}
		data, err := frame.AppendEncode(c.codec, scratch[:0], f)
		if err != nil {
			encBufPool.Put(scratch) //nolint:staticcheck // slice scratch, header alloc is noise
			br.Cancel()
			return Response{}, fmt.Errorf("services: encode frame: %w", err)
		}
		req.Parts = append(req.Parts, data)
		defer encBufPool.Put(data) //nolint:staticcheck // recycled after the synchronous write completes
	}

	out, err := c.caller.Call(ctx, req)
	br.Record(err == nil)
	if err != nil {
		return Response{}, err
	}
	if out.Len() < 1 {
		return Response{}, fmt.Errorf("services: empty response")
	}
	var resp Response
	if raw := out.Part(0); len(raw) > 0 {
		if err := json.Unmarshal(raw, &resp.Result); err != nil {
			return Response{}, fmt.Errorf("services: bad result payload: %w", err)
		}
	}
	if out.Len() >= 2 && len(out.Part(1)) > 0 {
		rf, err := c.codec.Decode(out.Part(1))
		if err != nil {
			return Response{}, fmt.Errorf("services: bad result frame: %w", err)
		}
		resp.Frame = rf
	}
	return resp, nil
}

// Close retires any client-side batchers and releases the connection.
func (c *Client) Close() error {
	c.stopBatchers()
	return c.caller.Close()
}
