// Package services implements VideoPipe's stateless services (paper §2.2):
// the container-hosted units that do the heavy framewise video analytics —
// pose detection, activity recognition, rep counting, object detection,
// image classification, face detection, fall detection and display
// composition.
//
// Services are stateless by contract: every call carries all the data it
// needs (including, for the sequence-dependent algorithms, an opaque state
// blob the caller owns), so instances can be shared across pipelines and
// scaled horizontally. Each instance models a container: a worker-
// concurrency limit, a per-call compute cost calibrated to the paper's DNN
// latencies (scaled by the hosting device's CPU factor), and a partially
// serialized execution section that produces realistic contention when
// multiple pipelines share one instance.
package services

import (
	"context"
	"encoding/json"
	"fmt"
	"time"

	"videopipe/internal/frame"
)

// Request is one service invocation's input.
type Request struct {
	// Args carries JSON-style named arguments.
	Args map[string]any
	// Frame carries pixel data for frame-consuming services. Co-located
	// callers pass the stored frame directly (zero copy); remote callers'
	// frames arrive decoded by the transport layer.
	Frame *frame.Frame
}

// Response is one service invocation's output.
type Response struct {
	// Result carries JSON-style named results.
	Result map[string]any
	// Frame carries pixel output for frame-producing services (display).
	Frame *frame.Frame
}

// Handler is a service implementation. Handlers must be stateless and safe
// for concurrent use.
type Handler func(ctx context.Context, req Request) (Response, error)

// Spec describes one deployable service type.
type Spec struct {
	// Name is the identifier modules use in call_service and configs.
	Name string
	// Cost is the simulated inference latency on a reference (desktop,
	// CPUFactor 1.0) device. The handler's real compute time counts toward
	// it; only the remainder is slept.
	Cost time.Duration
	// SerialFraction is the share of Cost executed under an instance-wide
	// lock, modelling the non-parallel portion of accelerator inference.
	// Zero means fully parallel across workers.
	SerialFraction float64
	// Workers is the per-instance concurrency limit; <= 0 means 1.
	Workers int
	// NeedsFrame documents whether requests must carry a frame.
	NeedsFrame bool
	// Handler is the implementation.
	Handler Handler

	// MaxBatch caps how many queued requests a pool's batch collector may
	// coalesce into one invocation; <= 1 means the service does not
	// support batching. Batching is off until Pool.SetBatching enables it.
	MaxBatch int
	// BatchLinger is the longest a batch collector may hold the first
	// request of a batch while waiting for more; zero means dispatch
	// immediately (batches only form from already-queued requests).
	BatchLinger time.Duration
	// MaxInstances bounds the tuner's autoscaling for this service;
	// <= 0 means the deployed size is also the ceiling (no autoscaling).
	MaxInstances int
}

// validate checks a spec for registration.
func (s Spec) validate() error {
	if s.Name == "" {
		return fmt.Errorf("services: spec missing name")
	}
	if s.Handler == nil {
		return fmt.Errorf("services: spec %q missing handler", s.Name)
	}
	if s.Cost < 0 {
		return fmt.Errorf("services: spec %q has negative cost", s.Name)
	}
	if s.SerialFraction < 0 || s.SerialFraction > 1 {
		return fmt.Errorf("services: spec %q has serial fraction %v outside [0,1]", s.Name, s.SerialFraction)
	}
	if s.BatchLinger < 0 {
		return fmt.Errorf("services: spec %q has negative batch linger", s.Name)
	}
	return nil
}

// Registry is a catalogue of service specs. The paper's list of services an
// application may use is predefined (§3.1); the registry is that list.
type Registry struct {
	specs map[string]Spec
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{specs: make(map[string]Spec)}
}

// Register adds a spec; re-registering a name is an error.
func (r *Registry) Register(s Spec) error {
	if err := s.validate(); err != nil {
		return err
	}
	if _, dup := r.specs[s.Name]; dup {
		return fmt.Errorf("services: %q already registered", s.Name)
	}
	r.specs[s.Name] = s
	return nil
}

// Lookup finds a spec by name.
func (r *Registry) Lookup(name string) (Spec, error) {
	s, ok := r.specs[name]
	if !ok {
		return Spec{}, fmt.Errorf("services: unknown service %q", name)
	}
	return s, nil
}

// Names reports the registered service names (unordered).
func (r *Registry) Names() []string {
	out := make([]string, 0, len(r.specs))
	for n := range r.specs {
		out = append(out, n)
	}
	return out
}

// ---- argument helpers shared by the standard services ----

// argString extracts a string argument.
func argString(args map[string]any, key string) (string, bool) {
	s, ok := args[key].(string)
	return s, ok
}

// argFloat extracts a numeric argument.
func argFloat(args map[string]any, key string) (float64, bool) {
	switch v := args[key].(type) {
	case float64:
		return v, true
	case int:
		return float64(v), true
	default:
		return 0, false
	}
}

// reencode converts arbitrary JSON-able data into map[string]any via the
// json package, normalizing numeric types.
func reencode(v any) (map[string]any, error) {
	data, err := json.Marshal(v)
	if err != nil {
		return nil, fmt.Errorf("services: marshal: %w", err)
	}
	var out map[string]any
	if err := json.Unmarshal(data, &out); err != nil {
		return nil, fmt.Errorf("services: unmarshal: %w", err)
	}
	return out, nil
}
