package services

import (
	"context"
	"image/color"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"videopipe/internal/frame"
	"videopipe/internal/netsim"
	"videopipe/internal/vision"
)

// testRegistry builds a standard registry once, with a small training
// corpus to keep tests fast.
var (
	regOnce sync.Once
	regVal  *Registry
	regErr  error
)

func testRegistry(t *testing.T) *Registry {
	t.Helper()
	regOnce.Do(func() {
		opts := DefaultOptions()
		// Shrink simulated costs so functional tests run fast; calibration
		// matters only for the benchmark harness.
		opts.PoseCost = 2 * time.Millisecond
		opts.ActivityCost = time.Millisecond
		opts.RepCost = time.Millisecond
		opts.DisplayCost = time.Millisecond
		opts.ObjectCost = time.Millisecond
		opts.ClassifyCost = time.Millisecond
		opts.FaceCost = time.Millisecond
		opts.FallCost = time.Millisecond
		cfg := vision.DefaultDatasetConfig()
		cfg.SequencesPerActivity = 6
		cfg.FramesPerSequence = 45
		opts.DatasetConfig = cfg
		regVal, regErr = NewStandardRegistry(opts)
	})
	if regErr != nil {
		t.Fatalf("NewStandardRegistry: %v", regErr)
	}
	return regVal
}

func poolFor(t *testing.T, name string) *Pool {
	t.Helper()
	spec, err := testRegistry(t).Lookup(name)
	if err != nil {
		t.Fatalf("Lookup(%s): %v", name, err)
	}
	p, err := NewPool(spec, 1, 1.0)
	if err != nil {
		t.Fatalf("NewPool(%s): %v", name, err)
	}
	return p
}

func sceneFrame(t *testing.T, a vision.Activity, phase float64) *frame.Frame {
	t.Helper()
	f := frame.MustNew(640, 480)
	pose := vision.SynthesizePose(a, phase, vision.DefaultSubject(), nil)
	vision.RenderScene(f, pose)
	return f
}

func TestRegistryBasics(t *testing.T) {
	r := NewRegistry()
	ok := Spec{Name: "x", Handler: func(context.Context, Request) (Response, error) { return Response{}, nil }}
	if err := r.Register(ok); err != nil {
		t.Fatalf("Register: %v", err)
	}
	if err := r.Register(ok); err == nil {
		t.Error("duplicate Register succeeded")
	}
	if _, err := r.Lookup("x"); err != nil {
		t.Errorf("Lookup: %v", err)
	}
	if _, err := r.Lookup("nope"); err == nil {
		t.Error("Lookup(nope) succeeded")
	}
	bad := []Spec{
		{},
		{Name: "y"},
		{Name: "y", Handler: ok.Handler, Cost: -1},
		{Name: "y", Handler: ok.Handler, SerialFraction: 1.5},
	}
	for i, s := range bad {
		if err := r.Register(s); err == nil {
			t.Errorf("bad spec %d accepted", i)
		}
	}
}

func TestStandardRegistryHasAllServices(t *testing.T) {
	r := testRegistry(t)
	for _, name := range []string{
		PoseDetector, ActivityClassifier, RepCounter, Display,
		ObjectDetector, ImageClassifier, FaceDetector, FallDetector,
	} {
		if _, err := r.Lookup(name); err != nil {
			t.Errorf("missing standard service %s", name)
		}
	}
	if len(r.Names()) != 8 {
		t.Errorf("registry has %d services, want 8", len(r.Names()))
	}
}

func TestInstancePadsToCost(t *testing.T) {
	spec := Spec{
		Name: "timed", Cost: 50 * time.Millisecond,
		Handler: func(context.Context, Request) (Response, error) { return Response{}, nil },
	}
	inst, err := NewInstance(spec, 1.0)
	if err != nil {
		t.Fatalf("NewInstance: %v", err)
	}
	start := time.Now()
	if _, err := inst.Invoke(context.Background(), Request{}); err != nil {
		t.Fatalf("Invoke: %v", err)
	}
	if elapsed := time.Since(start); elapsed < 48*time.Millisecond {
		t.Errorf("invoke took %v, want >= ~50ms simulated cost", elapsed)
	}
	if inst.Calls() != 1 {
		t.Errorf("Calls = %d", inst.Calls())
	}
}

func TestInstanceCPUFactorScalesCost(t *testing.T) {
	spec := Spec{
		Name: "timed", Cost: 30 * time.Millisecond,
		Handler: func(context.Context, Request) (Response, error) { return Response{}, nil },
	}
	slow, _ := NewInstance(spec, 0.5) // half-speed device: 60ms
	start := time.Now()
	slow.Invoke(context.Background(), Request{})
	if elapsed := time.Since(start); elapsed < 55*time.Millisecond {
		t.Errorf("half-speed invoke took %v, want >= ~60ms", elapsed)
	}
	if _, err := NewInstance(spec, 0); err == nil {
		t.Error("zero cpu factor accepted")
	}
}

func TestInstanceWorkerLimit(t *testing.T) {
	spec := Spec{
		Name: "limited", Cost: 40 * time.Millisecond, Workers: 1,
		Handler: func(context.Context, Request) (Response, error) { return Response{}, nil },
	}
	inst, _ := NewInstance(spec, 1.0)
	start := time.Now()
	var wg sync.WaitGroup
	for k := 0; k < 3; k++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			inst.Invoke(context.Background(), Request{})
		}()
	}
	wg.Wait()
	if elapsed := time.Since(start); elapsed < 110*time.Millisecond {
		t.Errorf("3 serialized 40ms calls took %v, want >= ~120ms", elapsed)
	}
}

func TestInstanceTwoWorkersParallel(t *testing.T) {
	spec := Spec{
		Name: "par", Cost: 40 * time.Millisecond, Workers: 2,
		Handler: func(context.Context, Request) (Response, error) { return Response{}, nil },
	}
	inst, _ := NewInstance(spec, 1.0)
	start := time.Now()
	var wg sync.WaitGroup
	for k := 0; k < 2; k++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			inst.Invoke(context.Background(), Request{})
		}()
	}
	wg.Wait()
	if elapsed := time.Since(start); elapsed > 70*time.Millisecond {
		t.Errorf("2 parallel 40ms calls took %v, want ~40ms", elapsed)
	}
}

func TestInstanceSerialFractionContends(t *testing.T) {
	spec := Spec{
		Name: "gpu", Cost: 60 * time.Millisecond, Workers: 2, SerialFraction: 1.0,
		Handler: func(context.Context, Request) (Response, error) { return Response{}, nil },
	}
	inst, _ := NewInstance(spec, 1.0)
	start := time.Now()
	var wg sync.WaitGroup
	for k := 0; k < 2; k++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			inst.Invoke(context.Background(), Request{})
		}()
	}
	wg.Wait()
	// Fully serialized: 2 x 60ms despite 2 workers.
	if elapsed := time.Since(start); elapsed < 110*time.Millisecond {
		t.Errorf("fully-serial calls took %v, want >= ~120ms", elapsed)
	}
}

func TestInstanceContextCancelled(t *testing.T) {
	spec := Spec{
		Name: "slow", Cost: time.Second,
		Handler: func(context.Context, Request) (Response, error) { return Response{}, nil },
	}
	inst, _ := NewInstance(spec, 1.0)
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if _, err := inst.Invoke(ctx, Request{}); err == nil {
		t.Error("Invoke survived context cancellation")
	}
}

func TestInstanceHandlerError(t *testing.T) {
	spec := Spec{
		Name: "failing", Handler: func(context.Context, Request) (Response, error) {
			return Response{}, context.DeadlineExceeded
		},
	}
	inst, _ := NewInstance(spec, 1.0)
	if _, err := inst.Invoke(context.Background(), Request{}); err == nil {
		t.Error("handler error swallowed")
	}
	if inst.Calls() != 0 {
		t.Error("failed call counted as served")
	}
}

func TestPoolScale(t *testing.T) {
	spec := Spec{
		Name: "s", Handler: func(context.Context, Request) (Response, error) { return Response{}, nil },
	}
	p, err := NewPool(spec, 1, 1.0)
	if err != nil {
		t.Fatalf("NewPool: %v", err)
	}
	if p.Size() != 1 {
		t.Errorf("Size = %d", p.Size())
	}
	if err := p.Scale(context.Background(), 3); err != nil {
		t.Fatalf("Scale up: %v", err)
	}
	if p.Size() != 3 {
		t.Errorf("Size after scale = %d", p.Size())
	}
	if err := p.Scale(context.Background(), 1); err != nil {
		t.Fatalf("Scale down: %v", err)
	}
	if p.Size() != 1 {
		t.Errorf("Size after shrink = %d", p.Size())
	}
	if err := p.Scale(context.Background(), 0); err == nil {
		t.Error("Scale(0) succeeded")
	}
	if _, err := NewPool(spec, 0, 1.0); err == nil {
		t.Error("NewPool(0) succeeded")
	}
}

func TestPoolScaleStartupDelay(t *testing.T) {
	spec := Spec{
		Name: "s", Handler: func(context.Context, Request) (Response, error) { return Response{}, nil },
	}
	p, _ := NewPool(spec, 1, 1.0)
	p.SetStartupDelay(50 * time.Millisecond)
	start := time.Now()
	if err := p.Scale(context.Background(), 2); err != nil {
		t.Fatalf("Scale: %v", err)
	}
	if elapsed := time.Since(start); elapsed < 45*time.Millisecond {
		t.Errorf("scale up took %v, want startup delay ~50ms", elapsed)
	}
}

func TestPoolScaleOutIncreasesThroughput(t *testing.T) {
	// The §5.2.2 scale-out story at micro level: 1 instance x 1 worker at
	// 30ms serves ~33 rps; 2 instances serve ~66.
	spec := Spec{
		Name: "w", Cost: 30 * time.Millisecond, Workers: 1,
		Handler: func(context.Context, Request) (Response, error) { return Response{}, nil },
	}
	run := func(n int) int {
		p, _ := NewPool(spec, n, 1.0)
		ctx, cancel := context.WithTimeout(context.Background(), 300*time.Millisecond)
		defer cancel()
		var served atomic.Int64
		var wg sync.WaitGroup
		for g := 0; g < 2; g++ { // two client pipelines
			wg.Add(1)
			go func() {
				defer wg.Done()
				for ctx.Err() == nil {
					if _, err := p.Invoke(ctx, Request{}); err == nil {
						served.Add(1)
					}
				}
			}()
		}
		wg.Wait()
		return int(served.Load())
	}
	one := run(1)
	two := run(2)
	if float64(two) < 1.5*float64(one) {
		t.Errorf("scale-out throughput: 1 instance = %d, 2 instances = %d; want ~2x", one, two)
	}
}

func TestPoseService(t *testing.T) {
	p := poolFor(t, PoseDetector)
	resp, err := p.Invoke(context.Background(), Request{Frame: sceneFrame(t, vision.Squat, 0.3)})
	if err != nil {
		t.Fatalf("Invoke: %v", err)
	}
	if resp.Result["found"] != true {
		t.Fatalf("pose not found: %v", resp.Result)
	}
	poseMap, ok := resp.Result["pose"].(map[string]any)
	if !ok {
		t.Fatal("result missing pose object")
	}
	if _, err := vision.PoseFromMap(poseMap); err != nil {
		t.Errorf("returned pose unparseable: %v", err)
	}
	// No frame -> error.
	if _, err := p.Invoke(context.Background(), Request{}); err == nil {
		t.Error("pose call without frame succeeded")
	}
	// Empty scene -> found=false.
	empty := frame.MustNew(64, 64)
	resp, err = p.Invoke(context.Background(), Request{Frame: empty})
	if err != nil {
		t.Fatalf("Invoke(empty): %v", err)
	}
	if resp.Result["found"] != false {
		t.Error("empty frame reported a person")
	}
}

func TestActivityService(t *testing.T) {
	p := poolFor(t, ActivityClassifier)
	poses, _ := vision.SynthesizeSequence(vision.Squat, vision.WindowSize, 15, 0.5, vision.DefaultSubject(), nil)
	window := make([]any, len(poses))
	for i, ps := range poses {
		window[i] = ps.ToMap()
	}
	args, err := reencode(map[string]any{"poses": window})
	if err != nil {
		t.Fatalf("reencode: %v", err)
	}
	resp, err := p.Invoke(context.Background(), Request{Args: args})
	if err != nil {
		t.Fatalf("Invoke: %v", err)
	}
	if resp.Result["activity"] != "squat" {
		t.Errorf("activity = %v, want squat", resp.Result["activity"])
	}
	// Validation failures.
	if _, err := p.Invoke(context.Background(), Request{Args: map[string]any{}}); err == nil {
		t.Error("missing poses accepted")
	}
	if _, err := p.Invoke(context.Background(), Request{Args: map[string]any{"poses": []any{map[string]any{}}}}); err == nil {
		t.Error("wrong window size accepted")
	}
}

func TestRepCounterServiceStatelessRoundTrip(t *testing.T) {
	p := poolFor(t, RepCounter)
	truth := 3
	fps, rate := 15.0, 0.5
	n := int(float64(truth)/rate*fps) + 1
	poses, _ := vision.SynthesizeSequence(vision.Squat, n, fps, rate, vision.DefaultSubject(), nil)

	state := ""
	var reps float64
	for _, pose := range poses {
		args, err := reencode(map[string]any{"state": state, "pose": pose.ToMap()})
		if err != nil {
			t.Fatalf("reencode: %v", err)
		}
		resp, err := p.Invoke(context.Background(), Request{Args: args})
		if err != nil {
			t.Fatalf("Invoke: %v", err)
		}
		state, _ = resp.Result["state"].(string)
		reps, _ = resp.Result["reps"].(float64)
	}
	if vision.RepAccuracy(int(reps), truth) < 0.6 {
		t.Errorf("stateless rep counting: got %v reps, truth %d", reps, truth)
	}
	// Corrupt state rejected.
	if _, err := p.Invoke(context.Background(), Request{Args: map[string]any{"state": "!!!", "pose": poses[0].ToMap()}}); err == nil {
		t.Error("corrupt state accepted")
	}
}

func TestFallService(t *testing.T) {
	p := poolFor(t, FallDetector)
	poses, _ := vision.SynthesizeSequence(vision.Fall, 60, 15, 0.4, vision.DefaultSubject(), nil)
	state := ""
	sawAlert := false
	for _, pose := range poses {
		args, _ := reencode(map[string]any{"state": state, "pose": pose.ToMap()})
		resp, err := p.Invoke(context.Background(), Request{Args: args})
		if err != nil {
			t.Fatalf("Invoke: %v", err)
		}
		state, _ = resp.Result["state"].(string)
		if resp.Result["alert"] == true {
			sawAlert = true
		}
	}
	if !sawAlert {
		t.Error("fall sequence never produced an alert")
	}
}

func TestObjectService(t *testing.T) {
	p := poolFor(t, ObjectDetector)
	f := frame.MustNew(320, 240)
	pose := vision.SynthesizePose(vision.Idle, 0, vision.Subject{CenterX: 80, CenterY: 120, Scale: 40}, nil)
	vision.RenderScene(f, pose)
	vision.DrawObject(f, "tv", 200, 40, 300, 110)
	resp, err := p.Invoke(context.Background(), Request{Frame: f})
	if err != nil {
		t.Fatalf("Invoke: %v", err)
	}
	objs, _ := resp.Result["objects"].([]any)
	foundTV := false
	for _, o := range objs {
		if m, ok := o.(map[string]any); ok && m["label"] == "tv" {
			foundTV = true
		}
	}
	if !foundTV {
		t.Errorf("tv not detected: %v", resp.Result)
	}
}

func TestClassifyServiceTrainAndPredict(t *testing.T) {
	p := poolFor(t, ImageClassifier)
	bright := frame.MustNew(32, 32)
	bright.Fill(colorRGBA(240, 220, 40))
	dark := frame.MustNew(32, 32)
	dark.Fill(colorRGBA(10, 10, 120))

	for i := 0; i < 3; i++ {
		if _, err := p.Invoke(context.Background(), Request{Args: map[string]any{"train": "day"}, Frame: bright}); err != nil {
			t.Fatalf("train: %v", err)
		}
		if _, err := p.Invoke(context.Background(), Request{Args: map[string]any{"train": "night"}, Frame: dark}); err != nil {
			t.Fatalf("train: %v", err)
		}
	}
	resp, err := p.Invoke(context.Background(), Request{Frame: bright})
	if err != nil {
		t.Fatalf("classify: %v", err)
	}
	if resp.Result["label"] != "day" {
		t.Errorf("label = %v, want day", resp.Result["label"])
	}
}

func TestFaceService(t *testing.T) {
	p := poolFor(t, FaceDetector)
	resp, err := p.Invoke(context.Background(), Request{Frame: sceneFrame(t, vision.Idle, 0)})
	if err != nil {
		t.Fatalf("Invoke: %v", err)
	}
	if resp.Result["found"] != true {
		t.Fatalf("face not found: %v", resp.Result)
	}
	box, ok := resp.Result["box"].(map[string]any)
	if !ok {
		t.Fatal("no box in result")
	}
	// The nose must be inside the returned box.
	pose := vision.SynthesizePose(vision.Idle, 0, vision.DefaultSubject(), nil)
	nose := pose.Keypoints[vision.Nose]
	minX, _ := box["min_x"].(float64)
	maxX, _ := box["max_x"].(float64)
	minY, _ := box["min_y"].(float64)
	maxY, _ := box["max_y"].(float64)
	if nose.X < minX || nose.X > maxX || nose.Y < minY || nose.Y > maxY {
		t.Errorf("nose %v outside face box [%v %v %v %v]", nose, minX, minY, maxX, maxY)
	}
}

func TestDisplayService(t *testing.T) {
	p := poolFor(t, Display)
	f := sceneFrame(t, vision.Squat, 0.2)
	pose := vision.SynthesizePose(vision.Squat, 0.2, vision.DefaultSubject(), nil)
	args, _ := reencode(map[string]any{"pose": pose.ToMap(), "activity": "squat", "reps": 3, "return_frame": true})
	resp, err := p.Invoke(context.Background(), Request{Args: args, Frame: f})
	if err != nil {
		t.Fatalf("Invoke: %v", err)
	}
	if resp.Frame == nil {
		t.Fatal("display returned no frame")
	}
	if resp.Frame == f {
		t.Error("display mutated the input frame instead of cloning")
	}
	// Banner row painted.
	c := resp.Frame.At(5, 5)
	if c == f.At(5, 5) {
		t.Error("activity banner not rendered")
	}
	// Rep ticks painted near the bottom-left.
	tick := resp.Frame.At(10, resp.Frame.Height-12)
	if tick.R != 255 || tick.G != 255 || tick.B != 255 {
		t.Errorf("rep tick not rendered: %v", tick)
	}
}

func TestServerClientRemoteCall(t *testing.T) {
	nw := netsim.NewNetwork(netsim.LinkProfile{})
	spec, err := testRegistry(t).Lookup(PoseDetector)
	if err != nil {
		t.Fatalf("Lookup: %v", err)
	}
	pool, _ := NewPool(spec, 1, 1.0)
	srv, err := NewServer(nw.Host("desktop"), 0, map[string]*Pool{PoseDetector: pool}, frame.JPEGCodec{Quality: 85})
	if err != nil {
		t.Fatalf("NewServer: %v", err)
	}
	defer srv.Close()

	client := NewClient(nw.Host("phone"), srv.Addr().String(), frame.JPEGCodec{Quality: 85})
	defer client.Close()

	resp, err := client.Call(context.Background(), PoseDetector, nil, sceneFrame(t, vision.Clap, 0.4))
	if err != nil {
		t.Fatalf("Call: %v", err)
	}
	if resp.Result["found"] != true {
		t.Errorf("remote pose call: %v", resp.Result)
	}

	// Unknown service -> remote error.
	if _, err := client.Call(context.Background(), "nope", nil, nil); err == nil {
		t.Error("unknown service call succeeded")
	}
}

func TestServerRoundTripsFrames(t *testing.T) {
	nw := netsim.NewNetwork(netsim.LinkProfile{})
	spec, _ := testRegistry(t).Lookup(Display)
	pool, _ := NewPool(spec, 1, 1.0)
	srv, err := NewServer(nw.Host("tv"), 0, map[string]*Pool{Display: pool}, nil)
	if err != nil {
		t.Fatalf("NewServer: %v", err)
	}
	defer srv.Close()

	client := NewClient(nw.Host("desktop"), srv.Addr().String(), nil)
	defer client.Close()
	resp, err := client.Call(context.Background(), Display, map[string]any{"reps": 2.0, "return_frame": true}, sceneFrame(t, vision.Idle, 0))
	if err != nil {
		t.Fatalf("Call: %v", err)
	}
	if resp.Frame == nil {
		t.Fatal("display frame lost in transfer")
	}
	if resp.Frame.Width != 640 || resp.Frame.Height != 480 {
		t.Errorf("returned frame %dx%d", resp.Frame.Width, resp.Frame.Height)
	}
}

func TestAutoScalerScalesUpUnderLoad(t *testing.T) {
	spec := Spec{
		Name: "busy", Cost: 30 * time.Millisecond, Workers: 1,
		Handler: func(context.Context, Request) (Response, error) { return Response{}, nil },
	}
	pool, _ := NewPool(spec, 1, 1.0)
	as, err := NewAutoScaler(pool, 1, 3, 10*time.Millisecond)
	if err != nil {
		t.Fatalf("NewAutoScaler: %v", err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 600*time.Millisecond)
	defer cancel()
	// Four aggressive clients against one worker: sustained queueing.
	for g := 0; g < 4; g++ {
		go func() {
			for ctx.Err() == nil {
				pool.Invoke(ctx, Request{})
			}
		}()
	}
	go as.Run(ctx)
	<-ctx.Done()

	if pool.Size() < 2 {
		t.Errorf("pool size = %d after sustained load, want scaled up", pool.Size())
	}
	ups := 0
	for _, d := range as.Decisions() {
		if strings.HasPrefix(d, "up:") {
			ups++
		}
	}
	if ups == 0 {
		t.Error("no scale-up decisions recorded")
	}
}

func TestAutoScalerScalesDownWhenIdle(t *testing.T) {
	spec := Spec{
		Name: "idle", Handler: func(context.Context, Request) (Response, error) { return Response{}, nil },
	}
	pool, _ := NewPool(spec, 3, 1.0)
	as, _ := NewAutoScaler(pool, 1, 3, time.Millisecond)
	as.DownAfter = 3
	ctx := context.Background()
	for i := 0; i < 10; i++ {
		as.Step(ctx)
	}
	if pool.Size() != 1 {
		t.Errorf("idle pool size = %d, want scaled down to 1", pool.Size())
	}
}

func TestAutoScalerValidation(t *testing.T) {
	if _, err := NewAutoScaler(nil, 1, 2, time.Second); err == nil {
		t.Error("nil pool accepted")
	}
	spec := Spec{Name: "x", Handler: func(context.Context, Request) (Response, error) { return Response{}, nil }}
	pool, _ := NewPool(spec, 1, 1.0)
	if _, err := NewAutoScaler(pool, 0, 2, time.Second); err == nil {
		t.Error("min 0 accepted")
	}
	if _, err := NewAutoScaler(pool, 3, 2, time.Second); err == nil {
		t.Error("max < min accepted")
	}
}

func colorRGBA(r, g, b uint8) color.RGBA {
	return color.RGBA{R: r, G: g, B: b, A: 255}
}

func TestPoolAccessorsAndWaitStats(t *testing.T) {
	spec := Spec{
		Name: "accessors", Cost: 20 * time.Millisecond, Workers: 1,
		Handler: func(context.Context, Request) (Response, error) { return Response{}, nil },
	}
	pool, err := NewPool(spec, 1, 1.0)
	if err != nil {
		t.Fatalf("NewPool: %v", err)
	}
	if pool.Name() != "accessors" {
		t.Errorf("Name = %q", pool.Name())
	}

	// Two concurrent callers against one worker: the loser queues, so
	// wait stats record contention.
	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			pool.Invoke(context.Background(), Request{})
		}()
	}
	wg.Wait()
	if got := pool.Calls(); got != 3 {
		t.Errorf("Calls = %d, want 3", got)
	}
	ws := pool.WaitStats()
	if ws.Count != 3 {
		t.Errorf("WaitStats count = %d, want 3", ws.Count)
	}
	if ws.Max < 10*time.Millisecond {
		t.Errorf("WaitStats max = %v, want queueing visible", ws.Max)
	}
}

func TestInstanceSpecAccessor(t *testing.T) {
	spec := Spec{Name: "s", Handler: func(context.Context, Request) (Response, error) { return Response{}, nil }}
	inst, _ := NewInstance(spec, 1.0)
	if inst.Spec().Name != "s" {
		t.Errorf("Spec().Name = %q", inst.Spec().Name)
	}
	if inst.InFlight() != 0 {
		t.Errorf("idle InFlight = %d", inst.InFlight())
	}
}

func TestArgHelpers(t *testing.T) {
	args := map[string]any{"s": "text", "f": 1.5, "i": 3, "b": true}
	if v, ok := argString(args, "s"); !ok || v != "text" {
		t.Errorf("argString = %q, %v", v, ok)
	}
	if _, ok := argString(args, "f"); ok {
		t.Error("argString accepted a float")
	}
	if v, ok := argFloat(args, "f"); !ok || v != 1.5 {
		t.Errorf("argFloat = %v, %v", v, ok)
	}
	if v, ok := argFloat(args, "i"); !ok || v != 3 {
		t.Errorf("argFloat(int) = %v, %v", v, ok)
	}
	if _, ok := argFloat(args, "b"); ok {
		t.Error("argFloat accepted a bool")
	}
	if _, ok := argFloat(args, "missing"); ok {
		t.Error("argFloat accepted a missing key")
	}
}

func TestReencodeNormalizesTypes(t *testing.T) {
	out, err := reencode(map[string]any{"n": 5, "nested": map[string]any{"x": []int{1, 2}}})
	if err != nil {
		t.Fatalf("reencode: %v", err)
	}
	if out["n"] != float64(5) {
		t.Errorf("n = %#v, want float64", out["n"])
	}
	if _, err := reencode(map[string]any{"bad": func() {}}); err == nil {
		t.Error("unmarshalable value accepted")
	}
}

func TestBannerColorStable(t *testing.T) {
	a := bannerColor("squat")
	b := bannerColor("squat")
	if a != b {
		t.Error("banner color not deterministic")
	}
	if bannerColor("squat") == bannerColor("wave") {
		t.Error("distinct activities share a banner color")
	}
}

func TestDisplayWithoutReturnFrame(t *testing.T) {
	p := poolFor(t, Display)
	resp, err := p.Invoke(context.Background(), Request{
		Args:  map[string]any{"reps": 1.0},
		Frame: frame.MustNew(32, 24),
	})
	if err != nil {
		t.Fatalf("Invoke: %v", err)
	}
	if resp.Frame != nil {
		t.Error("display shipped a frame back without return_frame")
	}
	if resp.Result["rendered"] != true {
		t.Errorf("result = %v", resp.Result)
	}
}

func TestPoolKill(t *testing.T) {
	spec := Spec{
		Name: "victim", Handler: func(context.Context, Request) (Response, error) { return Response{}, nil },
	}
	p, _ := NewPool(spec, 3, 1.0)
	if got := p.Kill(2); got != 2 {
		t.Errorf("Kill(2) = %d", got)
	}
	if p.Size() != 1 {
		t.Errorf("Size after Kill(2) = %d", p.Size())
	}
	// Unlike Scale, Kill may take the pool to zero.
	if got := p.Kill(5); got != 1 {
		t.Errorf("Kill(5) = %d, want 1 (all that remained)", got)
	}
	if p.Size() != 0 {
		t.Errorf("Size after killing all = %d", p.Size())
	}
	if _, err := p.Invoke(context.Background(), Request{}); err == nil {
		t.Error("Invoke on an emptied pool succeeded")
	}
	if got := p.Kill(1); got != 0 {
		t.Errorf("Kill on empty pool = %d", got)
	}
	// Restart path: Scale restores service from zero.
	if err := p.Scale(context.Background(), 2); err != nil {
		t.Fatalf("Scale after kill: %v", err)
	}
	if _, err := p.Invoke(context.Background(), Request{}); err != nil {
		t.Errorf("Invoke after restore: %v", err)
	}
}

func TestPoolPauseResume(t *testing.T) {
	spec := Spec{
		Name: "frozen", Handler: func(context.Context, Request) (Response, error) { return Response{}, nil },
	}
	p, _ := NewPool(spec, 1, 1.0)
	p.Pause()

	// A paused pool holds requests until the caller's deadline.
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	if _, err := p.Invoke(ctx, Request{}); err == nil {
		t.Error("Invoke on a paused pool succeeded")
	}
	if elapsed := time.Since(start); elapsed < 40*time.Millisecond {
		t.Errorf("paused Invoke failed after %v, want to block until the deadline", elapsed)
	}

	// Resume releases a request blocked mid-pause.
	done := make(chan error, 1)
	go func() {
		_, err := p.Invoke(context.Background(), Request{})
		done <- err
	}()
	time.Sleep(20 * time.Millisecond)
	select {
	case err := <-done:
		t.Fatalf("Invoke returned while paused: %v", err)
	default:
	}
	p.Resume()
	select {
	case err := <-done:
		if err != nil {
			t.Errorf("Invoke after resume: %v", err)
		}
	case <-time.After(time.Second):
		t.Fatal("Invoke still blocked after Resume")
	}
	// Idempotent.
	p.Resume()
	p.Pause()
	p.Pause()
	p.Resume()
}
