package services

import (
	"context"
	"encoding/base64"
	"fmt"
	"image/color"
	"time"

	"videopipe/internal/vision"
)

// StandardOptions configures the standard service set. Costs are the
// simulated inference latencies on the reference desktop, calibrated so the
// pipeline reproduces the paper's Fig. 6 stage latencies and Table 2 frame
// rates: pose detection dominates at ~85 ms (the paper's pipeline saturates
// near 11 FPS), the pose-sequence models are cheap, and display composition
// is a few milliseconds.
type StandardOptions struct {
	// Seed drives activity-classifier training-data generation.
	Seed int64
	// DatasetConfig controls classifier training; zero value selects the
	// default corpus.
	DatasetConfig vision.DatasetConfig

	// PoseCost is the pose detector's per-frame inference latency.
	PoseCost time.Duration
	// PoseWorkers is the pose container's internal concurrency.
	PoseWorkers int
	// PoseSerialFraction is the non-parallel share of pose inference.
	PoseSerialFraction float64

	// ActivityCost, RepCost, DisplayCost, ObjectCost, ClassifyCost,
	// FaceCost and FallCost are the remaining services' latencies.
	ActivityCost time.Duration
	RepCost      time.Duration
	DisplayCost  time.Duration
	ObjectCost   time.Duration
	ClassifyCost time.Duration
	FaceCost     time.Duration
	FallCost     time.Duration
}

// DefaultOptions returns the calibration used by the paper-reproduction
// experiments.
func DefaultOptions() StandardOptions {
	return StandardOptions{
		Seed:               1,
		PoseCost:           85 * time.Millisecond,
		PoseWorkers:        2,
		PoseSerialFraction: 0.5,
		ActivityCost:       6 * time.Millisecond,
		RepCost:            3 * time.Millisecond,
		DisplayCost:        4 * time.Millisecond,
		ObjectCost:         60 * time.Millisecond,
		ClassifyCost:       25 * time.Millisecond,
		FaceCost:           30 * time.Millisecond,
		FallCost:           3 * time.Millisecond,
	}
}

// Standard service names.
const (
	PoseDetector       = "pose_detector"
	ActivityClassifier = "activity_classifier"
	RepCounter         = "rep_counter"
	Display            = "display"
	ObjectDetector     = "object_detector"
	ImageClassifier    = "image_classifier"
	FaceDetector       = "face_detector"
	FallDetector       = "fall_detector"
)

// NewStandardRegistry builds the paper's predefined service list (§3.1),
// training the activity classifier on a synthetic labelled corpus.
func NewStandardRegistry(opts StandardOptions) (*Registry, error) {
	if opts.PoseCost == 0 {
		opts = DefaultOptions()
	}

	dsCfg := opts.DatasetConfig
	if len(dsCfg.Activities) == 0 {
		dsCfg = vision.DefaultDatasetConfig()
		dsCfg.Seed = opts.Seed
	}
	ds, err := vision.GenerateDataset(dsCfg)
	if err != nil {
		return nil, fmt.Errorf("services: training corpus: %w", err)
	}
	clf := vision.NewActivityClassifier(3)
	if err := clf.Train(ds.Train); err != nil {
		return nil, fmt.Errorf("services: training classifier: %w", err)
	}

	imgClf := vision.NewImageClassifier()

	r := NewRegistry()
	specs := []Spec{
		// MaxBatch/MaxInstances declare each service's tuning envelope: the
		// expensive detectors with a real serialized section gain the most
		// from batching (the serial cost is paid once per batch) and are
		// the ones worth scaling out; the millisecond-class services are
		// never a bottleneck and stay untunable.
		{
			Name: PoseDetector, Cost: opts.PoseCost, Workers: opts.PoseWorkers,
			SerialFraction: opts.PoseSerialFraction, NeedsFrame: true,
			Handler:  handlePose,
			MaxBatch: 4, BatchLinger: 20 * time.Millisecond, MaxInstances: 3,
		},
		{
			Name: ActivityClassifier, Cost: opts.ActivityCost, Workers: 2,
			Handler:      handleActivity(clf),
			MaxInstances: 2,
		},
		{
			Name: RepCounter, Cost: opts.RepCost, Workers: 2,
			Handler: handleRepCount,
		},
		{
			Name: Display, Cost: opts.DisplayCost, Workers: 2, NeedsFrame: true,
			Handler: handleDisplay,
		},
		{
			Name: ObjectDetector, Cost: opts.ObjectCost, Workers: 2, SerialFraction: 0.3, NeedsFrame: true,
			Handler:  handleObjects,
			MaxBatch: 4, BatchLinger: 15 * time.Millisecond, MaxInstances: 2,
		},
		{
			Name: ImageClassifier, Cost: opts.ClassifyCost, Workers: 2, NeedsFrame: true,
			Handler:  handleClassify(imgClf),
			MaxBatch: 2, BatchLinger: 10 * time.Millisecond, MaxInstances: 2,
		},
		{
			Name: FaceDetector, Cost: opts.FaceCost, Workers: 2, NeedsFrame: true,
			Handler:  handleFace,
			MaxBatch: 2, BatchLinger: 10 * time.Millisecond, MaxInstances: 2,
		},
		{
			Name: FallDetector, Cost: opts.FallCost, Workers: 2,
			Handler: handleFall,
		},
	}
	for _, s := range specs {
		if err := r.Register(s); err != nil {
			return nil, err
		}
	}
	// The image classifier trains online via classify requests carrying a
	// "train" label; expose the model through the registry-owned closure.
	return r, nil
}

// handlePose runs the 2D pose detector (paper §4.1.1).
func handlePose(_ context.Context, req Request) (Response, error) {
	if req.Frame == nil {
		return Response{}, fmt.Errorf("pose_detector: request carries no frame")
	}
	pose, found := vision.DetectPose(req.Frame)
	result := map[string]any{"found": found}
	if found {
		result["pose"] = pose.ToMap()
	}
	return Response{Result: result}, nil
}

// handleActivity classifies a window of poses (paper §4.1.2).
func handleActivity(clf *vision.ActivityClassifier) Handler {
	return func(_ context.Context, req Request) (Response, error) {
		rawPoses, ok := req.Args["poses"].([]any)
		if !ok {
			return Response{}, fmt.Errorf("activity_classifier: missing poses argument")
		}
		if len(rawPoses) != vision.WindowSize {
			return Response{}, fmt.Errorf("activity_classifier: got %d poses, want %d", len(rawPoses), vision.WindowSize)
		}
		window := make([]vision.Pose, len(rawPoses))
		for i, raw := range rawPoses {
			m, ok := raw.(map[string]any)
			if !ok {
				return Response{}, fmt.Errorf("activity_classifier: pose %d is not an object", i)
			}
			p, err := vision.PoseFromMap(m)
			if err != nil {
				return Response{}, fmt.Errorf("activity_classifier: pose %d: %w", i, err)
			}
			window[i] = p
		}
		label, conf, err := clf.Classify(window)
		if err != nil {
			return Response{}, fmt.Errorf("activity_classifier: %w", err)
		}
		return Response{Result: map[string]any{
			"activity":   label.String(),
			"confidence": conf,
			"actionable": vision.Actionable(conf),
		}}, nil
	}
}

// handleRepCount advances the stateless rep counter (paper §4.1.3): the
// caller passes the previous state blob and the new pose, and receives the
// updated blob and count.
func handleRepCount(_ context.Context, req Request) (Response, error) {
	stateB64, _ := argString(req.Args, "state")
	state, err := base64.StdEncoding.DecodeString(stateB64)
	if err != nil {
		return Response{}, fmt.Errorf("rep_counter: bad state encoding: %w", err)
	}
	rc, err := vision.RestoreRepCounter(state)
	if err != nil {
		return Response{}, fmt.Errorf("rep_counter: %w", err)
	}
	poseMap, ok := req.Args["pose"].(map[string]any)
	if !ok {
		return Response{}, fmt.Errorf("rep_counter: missing pose argument")
	}
	pose, err := vision.PoseFromMap(poseMap)
	if err != nil {
		return Response{}, fmt.Errorf("rep_counter: %w", err)
	}
	reps := rc.Observe(pose)
	newState, err := rc.MarshalState()
	if err != nil {
		return Response{}, fmt.Errorf("rep_counter: %w", err)
	}
	return Response{Result: map[string]any{
		"state":      base64.StdEncoding.EncodeToString(newState),
		"reps":       float64(reps),
		"calibrated": rc.Calibrated(),
	}}, nil
}

// handleFall advances the stateless fall detector (paper §4.3).
func handleFall(_ context.Context, req Request) (Response, error) {
	stateB64, _ := argString(req.Args, "state")
	state, err := base64.StdEncoding.DecodeString(stateB64)
	if err != nil {
		return Response{}, fmt.Errorf("fall_detector: bad state encoding: %w", err)
	}
	fd, err := vision.RestoreFallDetector(state)
	if err != nil {
		return Response{}, fmt.Errorf("fall_detector: %w", err)
	}
	poseMap, ok := req.Args["pose"].(map[string]any)
	if !ok {
		return Response{}, fmt.Errorf("fall_detector: missing pose argument")
	}
	pose, err := vision.PoseFromMap(poseMap)
	if err != nil {
		return Response{}, fmt.Errorf("fall_detector: %w", err)
	}
	alert := fd.Observe(pose)
	newState, err := fd.MarshalState()
	if err != nil {
		return Response{}, fmt.Errorf("fall_detector: %w", err)
	}
	return Response{Result: map[string]any{
		"state":  base64.StdEncoding.EncodeToString(newState),
		"fallen": fd.Fallen(),
		"alert":  alert,
	}}, nil
}

// handleObjects runs blob object detection.
func handleObjects(_ context.Context, req Request) (Response, error) {
	if req.Frame == nil {
		return Response{}, fmt.Errorf("object_detector: request carries no frame")
	}
	dets := vision.DetectObjects(req.Frame)
	objs := make([]any, len(dets))
	for i, d := range dets {
		objs[i] = map[string]any{
			"label": d.Label,
			"score": d.Score,
			"box": map[string]any{
				"min_x": d.Box.MinX, "min_y": d.Box.MinY,
				"max_x": d.Box.MaxX, "max_y": d.Box.MaxY,
			},
		}
	}
	return Response{Result: map[string]any{"objects": objs, "count": float64(len(dets))}}, nil
}

// handleClassify serves the image classifier; requests with a "train"
// argument add a labelled example (model updates are append-only and
// thread-safe at the vision layer granularity, guarded here).
func handleClassify(clf *vision.ImageClassifier) Handler {
	var guard = make(chan struct{}, 1)
	guard <- struct{}{}
	return func(_ context.Context, req Request) (Response, error) {
		if req.Frame == nil {
			return Response{}, fmt.Errorf("image_classifier: request carries no frame")
		}
		<-guard
		defer func() { guard <- struct{}{} }()
		if label, ok := argString(req.Args, "train"); ok {
			if err := clf.Train(label, req.Frame); err != nil {
				return Response{}, fmt.Errorf("image_classifier: %w", err)
			}
			return Response{Result: map[string]any{"trained": label}}, nil
		}
		label, conf, err := clf.Classify(req.Frame)
		if err != nil {
			return Response{}, fmt.Errorf("image_classifier: %w", err)
		}
		return Response{Result: map[string]any{"label": label, "confidence": conf}}, nil
	}
}

// handleFace reports the head region of the detected person.
func handleFace(_ context.Context, req Request) (Response, error) {
	if req.Frame == nil {
		return Response{}, fmt.Errorf("face_detector: request carries no frame")
	}
	pose, found := vision.DetectPose(req.Frame)
	if !found {
		return Response{Result: map[string]any{"found": false}}, nil
	}
	head := []vision.Point{
		pose.Keypoints[vision.Nose],
		pose.Keypoints[vision.LeftEye], pose.Keypoints[vision.RightEye],
		pose.Keypoints[vision.LeftEar], pose.Keypoints[vision.RightEar],
	}
	box := vision.Box{MinX: head[0].X, MinY: head[0].Y, MaxX: head[0].X, MaxY: head[0].Y}
	for _, p := range head[1:] {
		if p.X < box.MinX {
			box.MinX = p.X
		}
		if p.Y < box.MinY {
			box.MinY = p.Y
		}
		if p.X > box.MaxX {
			box.MaxX = p.X
		}
		if p.Y > box.MaxY {
			box.MaxY = p.Y
		}
	}
	pad := 1.2 * (box.MaxX - box.MinX)
	return Response{Result: map[string]any{
		"found": true,
		"box": map[string]any{
			"min_x": box.MinX - pad/2, "min_y": box.MinY - pad/2,
			"max_x": box.MaxX + pad/2, "max_y": box.MaxY + pad,
		},
	}}, nil
}

// handleDisplay composes the TV output (paper Fig. 3): the camera frame
// with the skeleton overlay, an activity color bar and rep-count tick
// marks. It returns the annotated frame.
func handleDisplay(_ context.Context, req Request) (Response, error) {
	if req.Frame == nil {
		return Response{}, fmt.Errorf("display: request carries no frame")
	}
	out := req.Frame.Clone()

	if poseMap, ok := req.Args["pose"].(map[string]any); ok {
		pose, err := vision.PoseFromMap(poseMap)
		if err != nil {
			out.Release()
			return Response{}, fmt.Errorf("display: %w", err)
		}
		overlay := color.RGBA{R: 255, G: 215, B: 0, A: 255}
		for _, bone := range vision.Bones {
			a := pose.Keypoints[bone[0]]
			b := pose.Keypoints[bone[1]]
			out.DrawLine(int(a.X)+1, int(a.Y)+1, int(b.X)+1, int(b.Y)+1, overlay)
		}
	}

	// Activity banner: a colored bar at the top whose hue encodes the label.
	if activity, ok := argString(req.Args, "activity"); ok && activity != "" {
		c := bannerColor(activity)
		out.DrawRect(0, 0, out.Width-1, 11, c)
	}

	// Rep counter: one tick mark per completed rep along the bottom.
	if reps, ok := argFloat(req.Args, "reps"); ok {
		tick := color.RGBA{R: 255, G: 255, B: 255, A: 255}
		for k := 0; k < int(reps) && 8+k*14 < out.Width; k++ {
			out.DrawRect(8+k*14, out.Height-16, 16+k*14, out.Height-8, tick)
		}
	}
	// The display service IS the screen: it renders in place. The composed
	// frame ships back only when the caller asks (return_frame), so remote
	// callers don't pay a pointless reverse transfer — and the clone is
	// recycled immediately when it stays here.
	resp := Response{Result: map[string]any{"rendered": true}}
	if want, ok := req.Args["return_frame"].(bool); ok && want {
		resp.Frame = out
	} else {
		out.Release()
	}
	return resp, nil
}

// bannerColor derives a stable display color from an activity label.
func bannerColor(activity string) color.RGBA {
	var h uint32 = 2166136261
	for i := 0; i < len(activity); i++ {
		h ^= uint32(activity[i])
		h *= 16777619
	}
	return color.RGBA{
		R: uint8(64 + h%160),
		G: uint8(64 + (h>>8)%160),
		B: uint8(64 + (h>>16)%160),
		A: 255,
	}
}
