package vision

import (
	"fmt"
	"math"
)

// WindowSize is the number of consecutive pose frames the activity
// recognizer classifies at a time (paper §4.1.2: "we take a list of 15
// consecutive frames").
const WindowSize = 15

// WindowFeatures flattens a window of poses into one feature vector,
// normalizing each frame so (0,0) is the hip midpoint (paper §4.1.2: "we
// normalize the coordinates framewise so that (0,0) is located at the
// average of the left and right hips").
func WindowFeatures(window []Pose) ([]float64, error) {
	if len(window) != WindowSize {
		return nil, fmt.Errorf("vision: window has %d poses, want %d", len(window), WindowSize)
	}
	out := make([]float64, 0, WindowSize*2*NumKeypoints)
	for _, p := range window {
		out = append(out, p.Features()...)
	}
	return out, nil
}

// LabeledWindow is one training or test example.
type LabeledWindow struct {
	Label    Activity
	Features []float64
}

// ActivityClassifier is the paper's activity recognizer: k-nearest
// neighbours over normalized pose-sequence windows.
type ActivityClassifier struct {
	k       int
	samples []LabeledWindow
}

// NewActivityClassifier creates a classifier with the given neighbourhood
// size; k <= 0 selects 3.
func NewActivityClassifier(k int) *ActivityClassifier {
	if k <= 0 {
		k = 3
	}
	return &ActivityClassifier{k: k}
}

// Train adds labelled windows to the model. kNN is instance-based, so
// training is accumulation.
func (c *ActivityClassifier) Train(samples []LabeledWindow) error {
	for i, s := range samples {
		if len(s.Features) != WindowSize*2*NumKeypoints {
			return fmt.Errorf("vision: sample %d has %d features, want %d", i, len(s.Features), WindowSize*2*NumKeypoints)
		}
		if s.Label == 0 {
			return fmt.Errorf("vision: sample %d has no label", i)
		}
	}
	c.samples = append(c.samples, samples...)
	return nil
}

// TrainPoses is a convenience wrapper: extract features from a pose window
// and add it with the given label.
func (c *ActivityClassifier) TrainPoses(label Activity, window []Pose) error {
	feats, err := WindowFeatures(window)
	if err != nil {
		return err
	}
	return c.Train([]LabeledWindow{{Label: label, Features: feats}})
}

// Len reports the number of stored training samples.
func (c *ActivityClassifier) Len() int { return len(c.samples) }

// Classify predicts the activity for a pose window and returns the label
// with its confidence (fraction of the k nearest neighbours agreeing).
func (c *ActivityClassifier) Classify(window []Pose) (Activity, float64, error) {
	feats, err := WindowFeatures(window)
	if err != nil {
		return 0, 0, err
	}
	return c.ClassifyFeatures(feats)
}

// ClassifyFeatures predicts from an already-extracted feature vector.
//
// The hot loop keeps only the k best neighbours (insertion into a tiny
// sorted array — no full sort over all samples) and abandons each squared
// distance as soon as it exceeds the current k-th best, so most training
// samples are rejected after a fraction of their 510 dimensions.
func (c *ActivityClassifier) ClassifyFeatures(feats []float64) (Activity, float64, error) {
	if len(c.samples) == 0 {
		return 0, 0, fmt.Errorf("vision: classifier has no training data")
	}
	if len(feats) != WindowSize*2*NumKeypoints {
		return 0, 0, fmt.Errorf("vision: feature vector has %d values, want %d", len(feats), WindowSize*2*NumKeypoints)
	}

	type scored struct {
		dist  float64
		label Activity
	}
	k := c.k
	if k > len(c.samples) {
		k = len(c.samples)
	}
	var arr [8]scored
	nearest := arr[:0]
	if k > len(arr) {
		nearest = make([]scored, 0, k)
	}
	for i := range c.samples {
		s := &c.samples[i]
		limit := math.Inf(1)
		if len(nearest) == k {
			limit = nearest[k-1].dist
		}
		d := sqDistLimit(feats, s.Features, limit)
		if d >= limit {
			continue
		}
		// Insert in ascending order, evicting the current worst when full.
		if len(nearest) < k {
			nearest = append(nearest, scored{})
		}
		j := len(nearest) - 1
		for j > 0 && nearest[j-1].dist > d {
			nearest[j] = nearest[j-1]
			j--
		}
		nearest[j] = scored{dist: d, label: s.Label}
	}

	var best Activity
	bestVotes := -1
	for i := range nearest {
		n := 0
		for j := range nearest {
			if nearest[j].label == nearest[i].label {
				n++
			}
		}
		if n > bestVotes || (n == bestVotes && nearest[i].label < best) {
			best, bestVotes = nearest[i].label, n
		}
	}
	return best, float64(bestVotes) / float64(k), nil
}

func sqDist(a, b []float64) float64 {
	var sum float64
	for i := range a {
		d := a[i] - b[i]
		sum += d * d
	}
	return sum
}

// sqDistLimit is sqDist with early abandonment: once the partial sum
// exceeds limit the exact value can't matter to a nearest-neighbour
// comparison, so it returns immediately. The limit check runs once per
// 8-element block to keep the common path branch-light.
func sqDistLimit(a, b []float64, limit float64) float64 {
	var sum float64
	i := 0
	for ; i+8 <= len(a); i += 8 {
		for j := i; j < i+8; j++ {
			d := a[j] - b[j]
			sum += d * d
		}
		if sum >= limit {
			return sum
		}
	}
	for ; i < len(a); i++ {
		d := a[i] - b[i]
		sum += d * d
	}
	return sum
}

// EvaluateAccuracy scores the classifier on a labelled test set, returning
// the fraction of correct predictions. It reproduces the paper's withheld
// test-set evaluation (§4.1.2 reports above 90%).
func (c *ActivityClassifier) EvaluateAccuracy(test []LabeledWindow) (float64, error) {
	if len(test) == 0 {
		return 0, fmt.Errorf("vision: empty test set")
	}
	correct := 0
	for _, s := range test {
		pred, _, err := c.ClassifyFeatures(s.Features)
		if err != nil {
			return 0, err
		}
		if pred == s.Label {
			correct++
		}
	}
	return float64(correct) / float64(len(test)), nil
}

// SlidingWindows cuts a pose sequence into consecutive windows with the
// given stride, discarding a final partial window.
func SlidingWindows(poses []Pose, stride int) [][]Pose {
	if stride <= 0 {
		stride = 1
	}
	var out [][]Pose
	for start := 0; start+WindowSize <= len(poses); start += stride {
		out = append(out, poses[start:start+WindowSize])
	}
	return out
}

// Confidence helpers used by gesture applications: a classification is
// actionable only when it is strong and stable.
const minActionableConfidence = 0.6

// Actionable reports whether a classification is confident enough to
// trigger an IoT action.
func Actionable(conf float64) bool { return conf >= minActionableConfidence && !math.IsNaN(conf) }
