package vision

import (
	"fmt"
	"math"
	"sort"
)

// WindowSize is the number of consecutive pose frames the activity
// recognizer classifies at a time (paper §4.1.2: "we take a list of 15
// consecutive frames").
const WindowSize = 15

// WindowFeatures flattens a window of poses into one feature vector,
// normalizing each frame so (0,0) is the hip midpoint (paper §4.1.2: "we
// normalize the coordinates framewise so that (0,0) is located at the
// average of the left and right hips").
func WindowFeatures(window []Pose) ([]float64, error) {
	if len(window) != WindowSize {
		return nil, fmt.Errorf("vision: window has %d poses, want %d", len(window), WindowSize)
	}
	out := make([]float64, 0, WindowSize*2*NumKeypoints)
	for _, p := range window {
		out = append(out, p.Features()...)
	}
	return out, nil
}

// LabeledWindow is one training or test example.
type LabeledWindow struct {
	Label    Activity
	Features []float64
}

// ActivityClassifier is the paper's activity recognizer: k-nearest
// neighbours over normalized pose-sequence windows.
type ActivityClassifier struct {
	k       int
	samples []LabeledWindow
}

// NewActivityClassifier creates a classifier with the given neighbourhood
// size; k <= 0 selects 3.
func NewActivityClassifier(k int) *ActivityClassifier {
	if k <= 0 {
		k = 3
	}
	return &ActivityClassifier{k: k}
}

// Train adds labelled windows to the model. kNN is instance-based, so
// training is accumulation.
func (c *ActivityClassifier) Train(samples []LabeledWindow) error {
	for i, s := range samples {
		if len(s.Features) != WindowSize*2*NumKeypoints {
			return fmt.Errorf("vision: sample %d has %d features, want %d", i, len(s.Features), WindowSize*2*NumKeypoints)
		}
		if s.Label == 0 {
			return fmt.Errorf("vision: sample %d has no label", i)
		}
	}
	c.samples = append(c.samples, samples...)
	return nil
}

// TrainPoses is a convenience wrapper: extract features from a pose window
// and add it with the given label.
func (c *ActivityClassifier) TrainPoses(label Activity, window []Pose) error {
	feats, err := WindowFeatures(window)
	if err != nil {
		return err
	}
	return c.Train([]LabeledWindow{{Label: label, Features: feats}})
}

// Len reports the number of stored training samples.
func (c *ActivityClassifier) Len() int { return len(c.samples) }

// Classify predicts the activity for a pose window and returns the label
// with its confidence (fraction of the k nearest neighbours agreeing).
func (c *ActivityClassifier) Classify(window []Pose) (Activity, float64, error) {
	feats, err := WindowFeatures(window)
	if err != nil {
		return 0, 0, err
	}
	return c.ClassifyFeatures(feats)
}

// ClassifyFeatures predicts from an already-extracted feature vector.
func (c *ActivityClassifier) ClassifyFeatures(feats []float64) (Activity, float64, error) {
	if len(c.samples) == 0 {
		return 0, 0, fmt.Errorf("vision: classifier has no training data")
	}
	if len(feats) != WindowSize*2*NumKeypoints {
		return 0, 0, fmt.Errorf("vision: feature vector has %d values, want %d", len(feats), WindowSize*2*NumKeypoints)
	}

	type scored struct {
		dist  float64
		label Activity
	}
	scores := make([]scored, len(c.samples))
	for i, s := range c.samples {
		scores[i] = scored{dist: sqDist(feats, s.Features), label: s.Label}
	}
	sort.Slice(scores, func(i, j int) bool { return scores[i].dist < scores[j].dist })

	k := c.k
	if k > len(scores) {
		k = len(scores)
	}
	votes := make(map[Activity]int)
	for _, s := range scores[:k] {
		votes[s.label]++
	}
	var best Activity
	bestVotes := -1
	for label, n := range votes {
		if n > bestVotes || (n == bestVotes && label < best) {
			best, bestVotes = label, n
		}
	}
	return best, float64(bestVotes) / float64(k), nil
}

func sqDist(a, b []float64) float64 {
	var sum float64
	for i := range a {
		d := a[i] - b[i]
		sum += d * d
	}
	return sum
}

// EvaluateAccuracy scores the classifier on a labelled test set, returning
// the fraction of correct predictions. It reproduces the paper's withheld
// test-set evaluation (§4.1.2 reports above 90%).
func (c *ActivityClassifier) EvaluateAccuracy(test []LabeledWindow) (float64, error) {
	if len(test) == 0 {
		return 0, fmt.Errorf("vision: empty test set")
	}
	correct := 0
	for _, s := range test {
		pred, _, err := c.ClassifyFeatures(s.Features)
		if err != nil {
			return 0, err
		}
		if pred == s.Label {
			correct++
		}
	}
	return float64(correct) / float64(len(test)), nil
}

// SlidingWindows cuts a pose sequence into consecutive windows with the
// given stride, discarding a final partial window.
func SlidingWindows(poses []Pose, stride int) [][]Pose {
	if stride <= 0 {
		stride = 1
	}
	var out [][]Pose
	for start := 0; start+WindowSize <= len(poses); start += stride {
		out = append(out, poses[start:start+WindowSize])
	}
	return out
}

// Confidence helpers used by gesture applications: a classification is
// actionable only when it is strong and stable.
const minActionableConfidence = 0.6

// Actionable reports whether a classification is confident enough to
// trigger an IoT action.
func Actionable(conf float64) bool { return conf >= minActionableConfidence && !math.IsNaN(conf) }
