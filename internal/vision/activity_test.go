package vision

import (
	"math/rand"
	"testing"
)

func TestWindowFeaturesValidation(t *testing.T) {
	if _, err := WindowFeatures(make([]Pose, WindowSize-1)); err == nil {
		t.Error("short window accepted")
	}
	feats, err := WindowFeatures(make([]Pose, WindowSize))
	if err != nil {
		t.Fatalf("WindowFeatures: %v", err)
	}
	if len(feats) != WindowSize*2*NumKeypoints {
		t.Errorf("feature length = %d, want %d", len(feats), WindowSize*2*NumKeypoints)
	}
}

func TestClassifierValidation(t *testing.T) {
	c := NewActivityClassifier(0)
	if _, _, err := c.ClassifyFeatures(make([]float64, WindowSize*2*NumKeypoints)); err == nil {
		t.Error("classify with no training data succeeded")
	}
	if err := c.Train([]LabeledWindow{{Label: Squat, Features: []float64{1}}}); err == nil {
		t.Error("training with bad feature length succeeded")
	}
	if err := c.Train([]LabeledWindow{{Features: make([]float64, WindowSize*2*NumKeypoints)}}); err == nil {
		t.Error("training with missing label succeeded")
	}
	if err := c.Train([]LabeledWindow{{Label: Squat, Features: make([]float64, WindowSize*2*NumKeypoints)}}); err != nil {
		t.Fatalf("valid Train: %v", err)
	}
	if c.Len() != 1 {
		t.Errorf("Len = %d, want 1", c.Len())
	}
	if _, _, err := c.ClassifyFeatures([]float64{1, 2}); err == nil {
		t.Error("classify with wrong feature length succeeded")
	}
}

func TestClassifierSeparatesTwoActivities(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	c := NewActivityClassifier(3)
	sub := DefaultSubject()
	for i := 0; i < 6; i++ {
		sub.Phase0 = float64(i) / 6
		squats, _ := SynthesizeSequence(Squat, WindowSize, 15, 0.5, sub, rng)
		jacks, _ := SynthesizeSequence(JumpingJack, WindowSize, 15, 0.5, sub, rng)
		if err := c.TrainPoses(Squat, squats); err != nil {
			t.Fatalf("TrainPoses: %v", err)
		}
		if err := c.TrainPoses(JumpingJack, jacks); err != nil {
			t.Fatalf("TrainPoses: %v", err)
		}
	}
	sub.Phase0 = 0.13
	test, _ := SynthesizeSequence(Squat, WindowSize, 15, 0.55, sub, rng)
	label, conf, err := c.Classify(test)
	if err != nil {
		t.Fatalf("Classify: %v", err)
	}
	if label != Squat {
		t.Errorf("Classify = %s, want squat", label)
	}
	if conf < 0.5 {
		t.Errorf("confidence = %v", conf)
	}
}

// TestActivityAccuracyAbove90 reproduces the paper's §4.1.2 claim: test
// accuracy on a withheld set is above 90% (experiment E4 in DESIGN.md).
func TestActivityAccuracyAbove90(t *testing.T) {
	ds, err := GenerateDataset(DefaultDatasetConfig())
	if err != nil {
		t.Fatalf("GenerateDataset: %v", err)
	}
	c := NewActivityClassifier(3)
	if err := c.Train(ds.Train); err != nil {
		t.Fatalf("Train: %v", err)
	}
	acc, err := c.EvaluateAccuracy(ds.Test)
	if err != nil {
		t.Fatalf("EvaluateAccuracy: %v", err)
	}
	t.Logf("activity recognition accuracy = %.1f%% (train %d, test %d; paper reports >90%%)",
		acc*100, len(ds.Train), len(ds.Test))
	if acc <= 0.90 {
		t.Errorf("accuracy = %.3f, want > 0.90 (paper §4.1.2)", acc)
	}
}

func TestEvaluateAccuracyEmptyTest(t *testing.T) {
	c := NewActivityClassifier(1)
	if _, err := c.EvaluateAccuracy(nil); err == nil {
		t.Error("empty test set accepted")
	}
}

func TestSlidingWindows(t *testing.T) {
	poses := make([]Pose, 45)
	ws := SlidingWindows(poses, 15)
	if len(ws) != 3 {
		t.Errorf("45 frames / stride 15 = %d windows, want 3", len(ws))
	}
	ws = SlidingWindows(poses, 5)
	if len(ws) != 7 {
		t.Errorf("45 frames / stride 5 = %d windows, want 7", len(ws))
	}
	if got := SlidingWindows(make([]Pose, WindowSize-1), 1); got != nil {
		t.Errorf("short sequence produced windows: %d", len(got))
	}
	// Non-positive stride treated as 1.
	if got := SlidingWindows(make([]Pose, WindowSize+1), 0); len(got) != 2 {
		t.Errorf("stride 0: %d windows, want 2", len(got))
	}
}

func TestGenerateDatasetValidation(t *testing.T) {
	cfg := DefaultDatasetConfig()
	cfg.Activities = nil
	if _, err := GenerateDataset(cfg); err == nil {
		t.Error("empty activity list accepted")
	}
	cfg = DefaultDatasetConfig()
	cfg.FramesPerSequence = 5
	if _, err := GenerateDataset(cfg); err == nil {
		t.Error("too-short sequences accepted")
	}
}

func TestGenerateDatasetDeterministic(t *testing.T) {
	cfg := DefaultDatasetConfig()
	cfg.SequencesPerActivity = 4
	a, err := GenerateDataset(cfg)
	if err != nil {
		t.Fatalf("GenerateDataset: %v", err)
	}
	b, err := GenerateDataset(cfg)
	if err != nil {
		t.Fatalf("GenerateDataset: %v", err)
	}
	if len(a.Train) != len(b.Train) || len(a.Test) != len(b.Test) {
		t.Fatalf("sizes differ: %d/%d vs %d/%d", len(a.Train), len(a.Test), len(b.Train), len(b.Test))
	}
	for i := range a.Train {
		if a.Train[i].Label != b.Train[i].Label {
			t.Fatal("labels differ between identical-seed generations")
		}
		for j := range a.Train[i].Features {
			if a.Train[i].Features[j] != b.Train[i].Features[j] {
				t.Fatal("features differ between identical-seed generations")
			}
		}
	}
}

func TestActionable(t *testing.T) {
	if Actionable(0.5) {
		t.Error("0.5 actionable")
	}
	if !Actionable(0.8) {
		t.Error("0.8 not actionable")
	}
}
