package vision

import (
	"fmt"
	"sort"

	"videopipe/internal/frame"
)

// ImageClassifier is the image-classification service's model: a
// nearest-centroid classifier over cheap global image features (mean color
// plus a coarse luminance histogram). It stands in for the paper's
// container-hosted CNN classifier; what the system cares about is a
// stateless classify(frame) -> label call.
type ImageClassifier struct {
	classes map[string][]float64
	counts  map[string]int
}

// NewImageClassifier creates an empty classifier.
func NewImageClassifier() *ImageClassifier {
	return &ImageClassifier{classes: make(map[string][]float64), counts: make(map[string]int)}
}

// featureDim: mean R, G, B + 8 luma histogram bins + horizontal/vertical
// brightness balance.
const classifierFeatureDim = 3 + 8 + 2

// ImageFeatures extracts the classifier's global feature vector.
func ImageFeatures(f *frame.Frame) []float64 {
	out := make([]float64, classifierFeatureDim)
	if f.Width == 0 || f.Height == 0 {
		return out
	}
	n := float64(f.Width * f.Height)
	var sumR, sumG, sumB float64
	var leftLuma, topLuma float64
	for y := 0; y < f.Height; y++ {
		for x := 0; x < f.Width; x++ {
			i := (y*f.Width + x) * 4
			r, g, b := float64(f.Pix[i]), float64(f.Pix[i+1]), float64(f.Pix[i+2])
			sumR += r
			sumG += g
			sumB += b
			luma := 0.299*r + 0.587*g + 0.114*b
			bin := int(luma / 32)
			if bin > 7 {
				bin = 7
			}
			out[3+bin]++
			if x < f.Width/2 {
				leftLuma += luma
			}
			if y < f.Height/2 {
				topLuma += luma
			}
		}
	}
	out[0] = sumR / n / 255
	out[1] = sumG / n / 255
	out[2] = sumB / n / 255
	var totalLuma float64
	for b := 0; b < 8; b++ {
		totalLuma += out[3+b]
	}
	for b := 0; b < 8; b++ {
		out[3+b] /= n
	}
	if totalLuma > 0 {
		// leftLuma/topLuma are sums of luma (0-255); normalize by the max
		// possible to keep features in [0,1].
		out[11] = leftLuma / (n * 255)
		out[12] = topLuma / (n * 255)
	}
	return out
}

// Train adds one labelled example, updating the class centroid.
func (c *ImageClassifier) Train(label string, f *frame.Frame) error {
	if label == "" {
		return fmt.Errorf("vision: empty class label")
	}
	feats := ImageFeatures(f)
	cur, ok := c.classes[label]
	if !ok {
		c.classes[label] = feats
		c.counts[label] = 1
		return nil
	}
	n := float64(c.counts[label])
	for i := range cur {
		cur[i] = (cur[i]*n + feats[i]) / (n + 1)
	}
	c.counts[label]++
	return nil
}

// Classes reports the trained labels, sorted.
func (c *ImageClassifier) Classes() []string {
	out := make([]string, 0, len(c.classes))
	for label := range c.classes {
		out = append(out, label)
	}
	sort.Strings(out)
	return out
}

// Classify predicts the label for a frame with a softmax-ish confidence.
func (c *ImageClassifier) Classify(f *frame.Frame) (string, float64, error) {
	if len(c.classes) == 0 {
		return "", 0, fmt.Errorf("vision: classifier has no classes")
	}
	feats := ImageFeatures(f)
	best, second := "", ""
	bestD, secondD := -1.0, -1.0
	for _, label := range c.Classes() {
		d := sqDist(feats, c.classes[label])
		if bestD < 0 || d < bestD {
			second, secondD = best, bestD
			best, bestD = label, d
		} else if secondD < 0 || d < secondD {
			second, secondD = label, d
		}
	}
	_ = second
	conf := 1.0
	if secondD > 0 {
		conf = 1 - bestD/(bestD+secondD)
	}
	return best, conf, nil
}
