package vision

import (
	"fmt"
	"math"
	"math/rand"
)

// DatasetConfig controls synthetic labelled-data generation for the
// accuracy experiments (paper §4.1.2/§4.1.3: trained on all available
// labelled data except a withheld test set).
type DatasetConfig struct {
	// Activities to include.
	Activities []Activity
	// SequencesPerActivity is the number of distinct recorded sequences
	// (subjects × sessions) per activity.
	SequencesPerActivity int
	// FramesPerSequence is the length of each recording.
	FramesPerSequence int
	// FPS is the capture rate.
	FPS float64
	// Noise is keypoint jitter in pixels.
	Noise float64
	// Seed makes generation reproducible.
	Seed int64
}

// DefaultDatasetConfig mirrors the paper's standardized home-camera setup.
func DefaultDatasetConfig() DatasetConfig {
	return DatasetConfig{
		Activities:           []Activity{Idle, Squat, JumpingJack, OverheadPress, Lunge, Wave, Clap},
		SequencesPerActivity: 12,
		FramesPerSequence:    90,
		FPS:                  15,
		Noise:                4.0,
		Seed:                 1,
	}
}

// Dataset is a labelled activity-window corpus split into train and test.
type Dataset struct {
	Train []LabeledWindow
	Test  []LabeledWindow
}

// GenerateDataset synthesizes pose sequences per activity with varied
// subjects and rep rates, slices them into 15-frame windows, and withholds
// every sequence whose index falls in the test split (1 in 4) — whole
// sequences are withheld, not windows, so train and test never share a
// recording.
func GenerateDataset(cfg DatasetConfig) (*Dataset, error) {
	if len(cfg.Activities) == 0 {
		return nil, fmt.Errorf("vision: dataset needs at least one activity")
	}
	if cfg.FramesPerSequence < WindowSize {
		return nil, fmt.Errorf("vision: sequences of %d frames are shorter than a window (%d)", cfg.FramesPerSequence, WindowSize)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	ds := &Dataset{}

	for _, act := range cfg.Activities {
		for seq := 0; seq < cfg.SequencesPerActivity; seq++ {
			subject := Subject{
				CenterX: 320 + rng.Float64()*40 - 20,
				CenterY: 260 + rng.Float64()*30 - 15,
				Scale:   80 * (0.9 + rng.Float64()*0.2),
				Noise:   cfg.Noise,
				Phase0:  rng.Float64(),
			}
			repRate := 0.4 + rng.Float64()*0.4 // 0.4-0.8 reps/sec
			poses, _ := SynthesizeSequence(act, cfg.FramesPerSequence, cfg.FPS, repRate, subject, rng)

			isTest := seq%4 == 3
			for _, w := range SlidingWindows(poses, WindowSize/3) {
				feats, err := WindowFeatures(w)
				if err != nil {
					return nil, err
				}
				lw := LabeledWindow{Label: act, Features: feats}
				if isTest {
					ds.Test = append(ds.Test, lw)
				} else {
					ds.Train = append(ds.Train, lw)
				}
			}
		}
	}
	if len(ds.Train) == 0 || len(ds.Test) == 0 {
		return nil, fmt.Errorf("vision: dataset split produced empty train (%d) or test (%d)", len(ds.Train), len(ds.Test))
	}
	return ds, nil
}

// RepTrial is one rep-counting evaluation case with ground truth.
type RepTrial struct {
	Activity  Activity
	Predicted int
	Truth     int
	Accuracy  float64
}

// EvaluateRepCounting generates exercise sequences with known rep counts,
// runs the 2-means counter over each, and reports per-trial and mean
// accuracy (paper §4.1.3 reports 83.3% on its withheld set).
func EvaluateRepCounting(trials int, seed int64) ([]RepTrial, float64, error) {
	if trials <= 0 {
		return nil, 0, fmt.Errorf("vision: trials must be positive")
	}
	rng := rand.New(rand.NewSource(seed))
	out := make([]RepTrial, 0, trials)
	var sum float64
	for i := 0; i < trials; i++ {
		act := Exercises[i%len(Exercises)]
		subject := Subject{
			CenterX: 320, CenterY: 260,
			Scale: 80 * (0.9 + rng.Float64()*0.2),
			Noise: 4 + rng.Float64()*5, // test-set noise: imperfect capture
		}
		fps := 15.0
		repRate := 0.35 + rng.Float64()*0.35
		truthReps := 4 + rng.Intn(5)
		frames := int(float64(truthReps)/repRate*fps) + 1

		// Withheld test recordings are harder than the training setup:
		// the subject drifts sideways and their pace wanders.
		poses := make([]Pose, frames)
		phase := subject.Phase0
		for f := 0; f < frames; f++ {
			sway := subject
			sway.CenterX += 25 * math.Sin(float64(f)/float64(fps)*0.9)
			poses[f] = SynthesizePose(act, phase, sway, rng)
			drift := 0.75 + 0.5*rng.Float64() // instantaneous pace 0.75x-1.25x
			phase += repRate / fps * drift
		}
		pred := CountReps(poses, DefaultDebounce, 0)
		acc := RepAccuracy(pred, truthReps)
		out = append(out, RepTrial{Activity: act, Predicted: pred, Truth: truthReps, Accuracy: acc})
		sum += acc
	}
	return out, sum / float64(trials), nil
}
