package vision

import (
	"math"

	"videopipe/internal/frame"
)

// markerMatchThreshold is the maximum RGB distance for a pixel to count as
// a joint marker. Marker colors are >= ~127 apart, so 60 leaves a healthy
// margin for JPEG artifacts while rejecting background and skeleton pixels.
const markerMatchThreshold = 60

// DetectPose recovers the 2D pose from a rendered frame: it classifies
// pixels against the 17 joint marker colors, takes the centroid of each
// color's pixels as the keypoint, and derives the person bounding box from
// all foreground pixels (paper §4.1.1: "detects a human and places a
// bounding box around them; within that bounding box it detects 17
// keypoints").
//
// The returned bool is false when no person is visible (fewer than half
// the markers found). Score is the fraction of markers located.
func DetectPose(f *frame.Frame) (Pose, bool) {
	w, h := f.Width, f.Height
	labels := make([]int8, w*h)

	minX, minY := math.Inf(1), math.Inf(1)
	maxX, maxY := math.Inf(-1), math.Inf(-1)
	foreground := 0

	// Pass 1: classify each pixel against the marker palette and track the
	// foreground extent.
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			i := (y*w + x) * 4
			r := int(f.Pix[i])
			g := int(f.Pix[i+1])
			b := int(f.Pix[i+2])

			// Foreground = anything meaningfully brighter than background.
			if r+g+b > 3*int(backgroundColor.R)+60 {
				fx, fy := float64(x), float64(y)
				minX = math.Min(minX, fx)
				minY = math.Min(minY, fy)
				maxX = math.Max(maxX, fx)
				maxY = math.Max(maxY, fy)
				foreground++
			}

			best, bestDist := -1, markerMatchThreshold*markerMatchThreshold+1
			for k, mc := range markerColors {
				dr := r - int(mc.R)
				dg := g - int(mc.G)
				db := b - int(mc.B)
				d := dr*dr + dg*dg + db*db
				if d < bestDist {
					best, bestDist = k, d
				}
			}
			labels[y*w+x] = int8(best)
		}
	}

	// Pass 2: accumulate centroids over *core* pixels only — pixels whose
	// four neighbours carry the same label. Compression blurs marker edges
	// into colors that can fall near a different palette entry; interiors
	// survive, so eroding by one pixel rejects the contamination.
	var sumX, sumY [NumKeypoints]float64
	var count [NumKeypoints]int
	for y := 1; y < h-1; y++ {
		for x := 1; x < w-1; x++ {
			i := y*w + x
			k := labels[i]
			if k < 0 {
				continue
			}
			if labels[i-1] != k || labels[i+1] != k || labels[i-w] != k || labels[i+w] != k {
				continue
			}
			sumX[k] += float64(x)
			sumY[k] += float64(y)
			count[k]++
		}
	}

	var p Pose
	found := 0
	for k := 0; k < NumKeypoints; k++ {
		if count[k] > 0 {
			p.Keypoints[k] = Point{X: sumX[k] / float64(count[k]), Y: sumY[k] / float64(count[k])}
			found++
		}
	}
	if found < NumKeypoints/2 || foreground == 0 {
		return Pose{}, false
	}
	// Fill any missed keypoints with the box center so downstream feature
	// vectors stay well-formed.
	p.Box = Box{MinX: minX, MinY: minY, MaxX: maxX, MaxY: maxY}
	center := p.Box.Center()
	for k := 0; k < NumKeypoints; k++ {
		if count[k] == 0 {
			p.Keypoints[k] = center
		}
	}
	p.Score = float64(found) / NumKeypoints
	return p, true
}

// DetectPersonBox reports only the foreground bounding box, for services
// that need presence detection without full pose recovery.
func DetectPersonBox(f *frame.Frame) (Box, bool) {
	minX, minY := math.Inf(1), math.Inf(1)
	maxX, maxY := math.Inf(-1), math.Inf(-1)
	foreground := 0
	for y := 0; y < f.Height; y++ {
		for x := 0; x < f.Width; x++ {
			i := (y*f.Width + x) * 4
			if int(f.Pix[i])+int(f.Pix[i+1])+int(f.Pix[i+2]) > 3*int(backgroundColor.R)+60 {
				fx, fy := float64(x), float64(y)
				minX = math.Min(minX, fx)
				minY = math.Min(minY, fy)
				maxX = math.Max(maxX, fx)
				maxY = math.Max(maxY, fy)
				foreground++
			}
		}
	}
	if foreground < 10 {
		return Box{}, false
	}
	return Box{MinX: minX, MinY: minY, MaxX: maxX, MaxY: maxY}, true
}
