package vision

import (
	"sync"

	"videopipe/internal/frame"
)

// markerMatchThreshold is the maximum RGB distance for a pixel to count as
// a joint marker. Marker colors are >= ~127 apart, so 60 leaves a healthy
// margin for JPEG artifacts while rejecting background and skeleton pixels.
const markerMatchThreshold = 60

// minMarkerChannel is the classification quick-reject bound: every palette
// entry has at least one channel equal to 255, so a pixel within
// markerMatchThreshold of any marker must have a channel >= 255 - 60. A
// pixel with all channels below this can't match and skips the 17-color
// distance loop — which is every background (16), skeleton (72) and head
// (80) pixel, i.e. almost the whole frame.
const minMarkerChannel = 255 - markerMatchThreshold

// labelsPool recycles the per-call pixel-label scratch (one int8 per
// pixel, the dominant allocation of DetectPose before pooling).
var labelsPool sync.Pool

func getLabels(n int) []int8 {
	if v := labelsPool.Get(); v != nil {
		if s := v.([]int8); cap(s) >= n {
			return s[:n]
		}
	}
	return make([]int8, n)
}

// extent is a foreground bounding region accumulated in integer pixel
// coordinates, so striped accumulation is order-independent and merges
// exactly.
type extent struct {
	minX, minY, maxX, maxY int
	count                  int
}

func newExtent() extent { return extent{minX: 1 << 30, minY: 1 << 30, maxX: -1, maxY: -1} }

func (e *extent) add(x, y int) {
	if x < e.minX {
		e.minX = x
	}
	if y < e.minY {
		e.minY = y
	}
	if x > e.maxX {
		e.maxX = x
	}
	if y > e.maxY {
		e.maxY = y
	}
	e.count++
}

func (e *extent) merge(o extent) {
	if o.minX < e.minX {
		e.minX = o.minX
	}
	if o.minY < e.minY {
		e.minY = o.minY
	}
	if o.maxX > e.maxX {
		e.maxX = o.maxX
	}
	if o.maxY > e.maxY {
		e.maxY = o.maxY
	}
	e.count += o.count
}

func (e *extent) box() Box {
	return Box{MinX: float64(e.minX), MinY: float64(e.minY), MaxX: float64(e.maxX), MaxY: float64(e.maxY)}
}

// foregroundThreshold: anything meaningfully brighter than background.
var foregroundThreshold = 3*int(backgroundColor.R) + 60

// DetectPose recovers the 2D pose from a rendered frame: it classifies
// pixels against the 17 joint marker colors, takes the centroid of each
// color's pixels as the keypoint, and derives the person bounding box from
// all foreground pixels (paper §4.1.1: "detects a human and places a
// bounding box around them; within that bounding box it detects 17
// keypoints").
//
// Both passes stripe their row loops across the shared worker group
// (frame.Stripes); centroids accumulate in int64 so results are identical
// at any worker count.
//
// The returned bool is false when no person is visible (fewer than half
// the markers found). Score is the fraction of markers located.
func DetectPose(f *frame.Frame) (Pose, bool) {
	w, h := f.Width, f.Height
	if w <= 0 || h <= 0 {
		return Pose{}, false
	}
	labels := getLabels(w * h)
	defer labelsPool.Put(labels) //nolint:staticcheck // scratch reuse; slice-header alloc is noise next to the buffer

	// Pass 1: classify each pixel against the marker palette and track the
	// foreground extent, row-striped with per-stripe partials merged under
	// a mutex (once per stripe, not per pixel).
	fg := newExtent()
	var mu sync.Mutex
	frame.Stripes(h, func(lo, hi int) {
		part := classifyRows(f, labels, lo, hi)
		mu.Lock()
		fg.merge(part)
		mu.Unlock()
	})

	// Pass 2: accumulate centroids over *core* pixels only — pixels whose
	// four neighbours carry the same label. Compression blurs marker edges
	// into colors that can fall near a different palette entry; interiors
	// survive, so eroding by one pixel rejects the contamination. The
	// stripes read labels across their row boundaries, which is safe: the
	// label array is complete and read-only by now.
	var sumX, sumY [NumKeypoints]int64
	var count [NumKeypoints]int
	frame.Stripes(h-2, func(lo, hi int) {
		var px, py [NumKeypoints]int64
		var pc [NumKeypoints]int
		erodeRows(labels, w, lo+1, hi+1, &px, &py, &pc)
		mu.Lock()
		for k := 0; k < NumKeypoints; k++ {
			sumX[k] += px[k]
			sumY[k] += py[k]
			count[k] += pc[k]
		}
		mu.Unlock()
	})

	var p Pose
	found := 0
	for k := 0; k < NumKeypoints; k++ {
		if count[k] > 0 {
			p.Keypoints[k] = Point{X: float64(sumX[k]) / float64(count[k]), Y: float64(sumY[k]) / float64(count[k])}
			found++
		}
	}
	if found < NumKeypoints/2 || fg.count == 0 {
		return Pose{}, false
	}
	// Fill any missed keypoints with the box center so downstream feature
	// vectors stay well-formed.
	p.Box = fg.box()
	center := p.Box.Center()
	for k := 0; k < NumKeypoints; k++ {
		if count[k] == 0 {
			p.Keypoints[k] = center
		}
	}
	p.Score = float64(found) / NumKeypoints
	return p, true
}

// classifyRows labels rows [lo, hi) and returns their foreground extent.
func classifyRows(f *frame.Frame, labels []int8, lo, hi int) extent {
	w := f.Width
	e := newExtent()
	for y := lo; y < hi; y++ {
		row := f.Pix[y*w*4 : (y+1)*w*4]
		base := y * w
		for x := 0; x < w; x++ {
			i := x * 4
			r := int(row[i])
			g := int(row[i+1])
			b := int(row[i+2])

			if r+g+b > foregroundThreshold {
				e.add(x, y)
			}

			if r < minMarkerChannel && g < minMarkerChannel && b < minMarkerChannel {
				labels[base+x] = -1
				continue
			}
			best, bestDist := -1, markerMatchThreshold*markerMatchThreshold+1
			for k := range markerColors {
				mc := &markerColors[k]
				dr := r - int(mc.R)
				dg := g - int(mc.G)
				db := b - int(mc.B)
				d := dr*dr + dg*dg + db*db
				if d < bestDist {
					best, bestDist = k, d
				}
			}
			labels[base+x] = int8(best)
		}
	}
	return e
}

// erodeRows accumulates core-pixel centroid partials for rows [lo, hi),
// which must lie within [1, h-1).
func erodeRows(labels []int8, w, lo, hi int, sumX, sumY *[NumKeypoints]int64, count *[NumKeypoints]int) {
	for y := lo; y < hi; y++ {
		rowBase := y * w
		for x := 1; x < w-1; x++ {
			i := rowBase + x
			k := labels[i]
			if k < 0 {
				continue
			}
			if labels[i-1] != k || labels[i+1] != k || labels[i-w] != k || labels[i+w] != k {
				continue
			}
			sumX[k] += int64(x)
			sumY[k] += int64(y)
			count[k]++
		}
	}
}

// DetectPersonBox reports only the foreground bounding box, for services
// that need presence detection without full pose recovery.
func DetectPersonBox(f *frame.Frame) (Box, bool) {
	w, h := f.Width, f.Height
	if w <= 0 || h <= 0 {
		return Box{}, false
	}
	fg := newExtent()
	var mu sync.Mutex
	frame.Stripes(h, func(lo, hi int) {
		part := newExtent()
		for y := lo; y < hi; y++ {
			row := f.Pix[y*w*4 : (y+1)*w*4]
			for x := 0; x < w; x++ {
				i := x * 4
				if int(row[i])+int(row[i+1])+int(row[i+2]) > foregroundThreshold {
					part.add(x, y)
				}
			}
		}
		mu.Lock()
		fg.merge(part)
		mu.Unlock()
	})
	if fg.count < 10 {
		return Box{}, false
	}
	return fg.box(), true
}
