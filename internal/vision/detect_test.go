package vision

import (
	"math/rand"
	"testing"
	"time"

	"videopipe/internal/frame"
)

func TestDetectPoseRecoversKeypoints(t *testing.T) {
	f := frame.MustNew(640, 480)
	truth := SynthesizePose(Squat, 0.3, DefaultSubject(), nil)
	RenderScene(f, truth)

	got, ok := DetectPose(f)
	if !ok {
		t.Fatal("DetectPose found no person")
	}
	if got.Score < 0.9 {
		t.Errorf("Score = %v, want >= 0.9", got.Score)
	}
	for i := range truth.Keypoints {
		if d := truth.Keypoints[i].Dist(got.Keypoints[i]); d > 4 {
			t.Errorf("keypoint %s off by %.1f px", KeypointNames[i], d)
		}
	}
	for _, kp := range truth.Keypoints {
		if !got.Box.Contains(kp) {
			t.Errorf("detected box %+v does not contain keypoint %v", got.Box, kp)
			break
		}
	}
}

func TestDetectPoseSurvivesJPEG(t *testing.T) {
	f := frame.MustNew(640, 480)
	truth := SynthesizePose(JumpingJack, 0.5, DefaultSubject(), nil)
	RenderScene(f, truth)

	data, err := frame.JPEGCodec{Quality: 85}.Encode(f)
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	decoded, err := frame.JPEGCodec{}.Decode(data)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}

	got, ok := DetectPose(decoded)
	if !ok {
		t.Fatal("DetectPose found no person after JPEG round trip")
	}
	if got.Score < 0.8 {
		t.Errorf("post-JPEG Score = %v, want >= 0.8", got.Score)
	}
	for i := range truth.Keypoints {
		if d := truth.Keypoints[i].Dist(got.Keypoints[i]); d > 8 {
			t.Errorf("post-JPEG keypoint %s off by %.1f px", KeypointNames[i], d)
		}
	}
}

func TestDetectPoseEmptyFrame(t *testing.T) {
	f := frame.MustNew(160, 120)
	f.Fill(backgroundColor)
	if _, ok := DetectPose(f); ok {
		t.Error("DetectPose found a person in an empty scene")
	}
	if _, ok := DetectPersonBox(f); ok {
		t.Error("DetectPersonBox found a person in an empty scene")
	}
}

func TestDetectPersonBox(t *testing.T) {
	f := frame.MustNew(640, 480)
	truth := SynthesizePose(Idle, 0, DefaultSubject(), nil)
	RenderScene(f, truth)
	box, ok := DetectPersonBox(f)
	if !ok {
		t.Fatal("no person box")
	}
	for i, kp := range truth.Keypoints {
		if !box.Contains(kp) {
			t.Errorf("box misses keypoint %s", KeypointNames[i])
		}
	}
}

func TestDetectionEndToEndAcrossActivities(t *testing.T) {
	// Every activity must remain detectable at every phase — the pipeline
	// depends on it.
	rng := rand.New(rand.NewSource(3))
	for _, a := range AllActivities {
		for _, phase := range []float64{0.1, 0.6} {
			f := frame.MustNew(640, 480)
			s := DefaultSubject()
			s.Noise = 1
			truth := SynthesizePose(a, phase, s, rng)
			RenderScene(f, truth)
			got, ok := DetectPose(f)
			if !ok {
				t.Errorf("%s phase %.1f: not detected", a, phase)
				continue
			}
			if d := truth.HipCenter().Dist(got.HipCenter()); d > 6 {
				t.Errorf("%s phase %.1f: hip center off by %.1f px", a, phase, d)
			}
		}
	}
}

func TestSceneRendererProducesDetectableFrames(t *testing.T) {
	r := SceneRenderer(640, 480, OverheadPress, 0.5, DefaultSubject())
	f, err := r(0, 700*time.Millisecond)
	if err != nil {
		t.Fatalf("render: %v", err)
	}
	if _, ok := DetectPose(f); !ok {
		t.Error("scene renderer output not detectable")
	}
}

func TestDetectObjects(t *testing.T) {
	f := frame.MustNew(320, 240)
	f.Fill(backgroundColor)
	if !DrawObject(f, "chair", 20, 120, 80, 200) {
		t.Fatal("DrawObject(chair) failed")
	}
	if !DrawObject(f, "tv", 150, 30, 280, 110) {
		t.Fatal("DrawObject(tv) failed")
	}
	if DrawObject(f, "spaceship", 0, 0, 5, 5) {
		t.Error("DrawObject accepted unknown label")
	}

	dets := DetectObjects(f)
	if len(dets) != 2 {
		t.Fatalf("detected %d objects, want 2: %+v", len(dets), dets)
	}
	// Sorted by MinY: tv first.
	if dets[0].Label != "tv" || dets[1].Label != "chair" {
		t.Errorf("labels = %s, %s", dets[0].Label, dets[1].Label)
	}
	tv := dets[0].Box
	if tv.MinX > 151 || tv.MaxX < 279 || tv.MinY > 31 || tv.MaxY < 109 {
		t.Errorf("tv box %+v doesn't cover drawn region", tv)
	}
	for _, d := range dets {
		if d.Score < 0.9 {
			t.Errorf("%s score %.2f, want >= 0.9 for solid rectangles", d.Label, d.Score)
		}
	}
}

func TestDetectObjectsSpeckleSuppression(t *testing.T) {
	f := frame.MustNew(100, 100)
	f.Fill(backgroundColor)
	c, _ := ObjectColor("cup")
	f.Set(50, 50, c) // single pixel: below minObjectPixels
	if dets := DetectObjects(f); len(dets) != 0 {
		t.Errorf("speckle detected as object: %+v", dets)
	}
}

func TestDetectObjectsSameClassSeparateInstances(t *testing.T) {
	f := frame.MustNew(200, 100)
	f.Fill(backgroundColor)
	DrawObject(f, "bottle", 10, 10, 30, 60)
	DrawObject(f, "bottle", 120, 10, 140, 60)
	dets := DetectObjects(f)
	if len(dets) != 2 {
		t.Fatalf("detected %d bottles, want 2 separate instances", len(dets))
	}
}

func TestDetectObjectsSurvivesJPEG(t *testing.T) {
	f := frame.MustNew(320, 240)
	f.Fill(backgroundColor)
	DrawObject(f, "book", 40, 40, 120, 90)
	data, err := frame.JPEGCodec{Quality: 85}.Encode(f)
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	dec, err := frame.JPEGCodec{}.Decode(data)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	dets := DetectObjects(dec)
	found := false
	for _, d := range dets {
		if d.Label == "book" {
			found = true
		}
	}
	if !found {
		t.Errorf("book not detected after JPEG: %+v", dets)
	}
}

func TestObjectClassNames(t *testing.T) {
	names := ObjectClassNames()
	if len(names) == 0 {
		t.Fatal("no object classes")
	}
	seen := map[string]bool{}
	for _, n := range names {
		if seen[n] {
			t.Errorf("duplicate class %q", n)
		}
		seen[n] = true
		if _, ok := ObjectColor(n); !ok {
			t.Errorf("class %q has no color", n)
		}
	}
}
