package vision

import "math"

// FallDetector implements the fall-detection service behind the paper's
// §4.3 application. It is rule-based over pose geometry: a fall is a
// sustained combination of (a) torso near horizontal and (b) the hip
// center having dropped far below its running baseline.
type FallDetector struct {
	// tiltThreshold is the torso angle from vertical (radians) above which
	// the body counts as "down".
	tiltThreshold float64
	// dropFraction is how far the hips must fall, as a fraction of torso
	// length, relative to the baseline.
	dropFraction float64
	// holdFrames is how many consecutive "down" frames constitute a fall,
	// filtering exercise motion.
	holdFrames int

	baselineHipY float64
	torsoLen     float64
	samples      int
	downStreak   int
	fallen       bool
}

// NewFallDetector creates a detector with sensible defaults.
func NewFallDetector() *FallDetector {
	return &FallDetector{
		tiltThreshold: math.Pi / 3, // 60 degrees from vertical
		dropFraction:  0.5,
		holdFrames:    5,
	}
}

// Fallen reports whether a fall has been detected.
func (d *FallDetector) Fallen() bool { return d.fallen }

// Observe consumes one pose; it returns true on the frame a fall is first
// confirmed.
func (d *FallDetector) Observe(p Pose) bool {
	hip := p.HipCenter()
	shoulder := Point{
		X: (p.Keypoints[LeftShoulder].X + p.Keypoints[RightShoulder].X) / 2,
		Y: (p.Keypoints[LeftShoulder].Y + p.Keypoints[RightShoulder].Y) / 2,
	}
	torso := hip.Dist(shoulder)
	tilt := math.Atan2(math.Abs(shoulder.X-hip.X), math.Abs(hip.Y-shoulder.Y))

	// Establish the standing baseline from early upright frames.
	if d.samples < 10 && tilt < math.Pi/6 {
		d.baselineHipY = (d.baselineHipY*float64(d.samples) + hip.Y) / float64(d.samples+1)
		d.torsoLen = (d.torsoLen*float64(d.samples) + torso) / float64(d.samples+1)
		d.samples++
		return false
	}
	if d.samples == 0 {
		// Never saw an upright frame yet; can't judge drops.
		return false
	}

	dropped := hip.Y-d.baselineHipY > d.dropFraction*d.torsoLen
	tilted := tilt > d.tiltThreshold
	if dropped && tilted {
		d.downStreak++
	} else {
		d.downStreak = 0
		// Recovery: standing upright again clears the alarm.
		if d.fallen && !dropped && tilt < math.Pi/6 {
			d.fallen = false
		}
	}
	if d.downStreak >= d.holdFrames && !d.fallen {
		d.fallen = true
		return true
	}
	return false
}

// Reset clears detector state.
func (d *FallDetector) Reset() {
	d.baselineHipY = 0
	d.torsoLen = 0
	d.samples = 0
	d.downStreak = 0
	d.fallen = false
}
