package vision

import (
	"image/color"
	"sort"

	"videopipe/internal/frame"
)

// Detection is one detected object: a bounding box, a class label and a
// confidence score.
type Detection struct {
	Label string
	Box   Box
	Score float64
}

// objectClasses maps the distinctive colors of synthetic scene objects to
// class labels. Scenes rendered for the object-detection service draw
// household objects as colored shapes; detection is connected-component
// analysis over these classes.
var objectClasses = []struct {
	name  string
	color color.RGBA
}{
	{"person", color.RGBA{R: 224, G: 180, B: 150, A: 255}},
	{"chair", color.RGBA{R: 150, G: 75, B: 0, A: 255}},
	{"bottle", color.RGBA{R: 0, G: 180, B: 60, A: 255}},
	{"tv", color.RGBA{R: 40, G: 40, B: 200, A: 255}},
	{"cup", color.RGBA{R: 220, G: 40, B: 180, A: 255}},
	{"book", color.RGBA{R: 230, G: 220, B: 40, A: 255}},
}

// objectMatchThreshold is the max RGB distance for a pixel to belong to an
// object class.
const objectMatchThreshold = 55

// minObjectChannelSum is the classification quick-reject bound: the dimmest
// class (chair, 150+75+0=225) still sums to 225, and a pixel within
// objectMatchThreshold of any class deviates by at most 55 per channel, so
// its channel sum is >= 225 - 3*55 = 60. Anything dimmer — every
// background pixel — skips the 6-class distance loop.
const minObjectChannelSum = 225 - 3*objectMatchThreshold

// minObjectPixels suppresses speckle detections.
const minObjectPixels = 12

// ObjectClassNames lists the labels the detector can produce.
func ObjectClassNames() []string {
	out := make([]string, len(objectClasses))
	for i, oc := range objectClasses {
		out[i] = oc.name
	}
	return out
}

// ObjectColor returns the canonical render color for a class, for scene
// generators; ok is false for unknown labels.
func ObjectColor(label string) (color.RGBA, bool) {
	for _, oc := range objectClasses {
		if oc.name == label {
			return oc.color, true
		}
	}
	return color.RGBA{}, false
}

// DetectObjects finds all objects in a frame by connected-component
// analysis over class-colored pixels (4-connectivity, union-find). The
// classification pass is row-striped across the shared worker group with a
// channel-sum quick reject; the union-find stays serial (it is a small
// fraction of the work and inherently order-dependent).
func DetectObjects(f *frame.Frame) []Detection {
	w, h := f.Width, f.Height
	classOf := make([]int8, w*h)
	frame.Stripes(h, func(lo, hi int) {
		for y := lo; y < hi; y++ {
			row := f.Pix[y*w*4 : (y+1)*w*4]
			base := y * w
			for x := 0; x < w; x++ {
				pi := x * 4
				r := int(row[pi])
				g := int(row[pi+1])
				b := int(row[pi+2])
				if r+g+b < minObjectChannelSum {
					classOf[base+x] = -1
					continue
				}
				best, bestDist := -1, objectMatchThreshold*objectMatchThreshold+1
				for k, oc := range objectClasses {
					dr := r - int(oc.color.R)
					dg := g - int(oc.color.G)
					db := b - int(oc.color.B)
					if d := dr*dr + dg*dg + db*db; d < bestDist {
						best, bestDist = k, d
					}
				}
				classOf[base+x] = int8(best)
			}
		}
	})

	// Union-find over same-class 4-neighbours.
	parent := make([]int32, w*h)
	for i := range parent {
		parent[i] = int32(i)
	}
	var find func(i int32) int32
	find = func(i int32) int32 {
		for parent[i] != i {
			parent[i] = parent[parent[i]]
			i = parent[i]
		}
		return i
	}
	union := func(a, b int32) {
		ra, rb := find(a), find(b)
		if ra != rb {
			parent[rb] = ra
		}
	}
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			i := y*w + x
			if classOf[i] < 0 {
				continue
			}
			if x+1 < w && classOf[i+1] == classOf[i] {
				union(int32(i), int32(i+1))
			}
			if y+1 < h && classOf[i+w] == classOf[i] {
				union(int32(i), int32(i+w))
			}
		}
	}

	type comp struct {
		class                  int8
		count                  int
		minX, minY, maxX, maxY int
	}
	comps := make(map[int32]*comp)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			i := y*w + x
			if classOf[i] < 0 {
				continue
			}
			root := find(int32(i))
			c, ok := comps[root]
			if !ok {
				c = &comp{class: classOf[i], minX: x, minY: y, maxX: x, maxY: y}
				comps[root] = c
			}
			c.count++
			if x < c.minX {
				c.minX = x
			}
			if y < c.minY {
				c.minY = y
			}
			if x > c.maxX {
				c.maxX = x
			}
			if y > c.maxY {
				c.maxY = y
			}
		}
	}

	var out []Detection
	for _, c := range comps {
		if c.count < minObjectPixels {
			continue
		}
		area := (c.maxX - c.minX + 1) * (c.maxY - c.minY + 1)
		score := float64(c.count) / float64(area) // fill ratio as confidence
		if score > 1 {
			score = 1
		}
		out = append(out, Detection{
			Label: objectClasses[c.class].name,
			Box:   Box{MinX: float64(c.minX), MinY: float64(c.minY), MaxX: float64(c.maxX), MaxY: float64(c.maxY)},
			Score: score,
		})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Box.MinY != out[j].Box.MinY {
			return out[i].Box.MinY < out[j].Box.MinY
		}
		return out[i].Box.MinX < out[j].Box.MinX
	})
	return out
}

// DrawObject renders a class-colored rectangle into a frame, for building
// synthetic object-detection scenes.
func DrawObject(f *frame.Frame, label string, x0, y0, x1, y1 int) bool {
	c, ok := ObjectColor(label)
	if !ok {
		return false
	}
	f.DrawRect(x0, y0, x1, y1, c)
	return true
}
