// Package vision implements the computer-vision algorithms behind
// VideoPipe's stateless services, operating on synthetic data in place of
// the paper's DNN models (see DESIGN.md §1 for the substitution argument):
//
//   - a parametric human-motion synthesizer that generates 2D poses for the
//     exercises and gestures the paper's applications use;
//   - a renderer that draws those poses into camera frames, and a pixel-level
//     pose detector that recovers the 17 keypoints plus a person bounding box
//     (paper §4.1.1);
//   - the activity recognizer: nearest-neighbour over 15-frame, hip-centred
//     normalized pose windows (paper §4.1.2);
//   - the rep counter: 2-means clustering over framewise poses with a 4-frame
//     debounce on state transitions (paper §4.1.3);
//   - blob-based object detection, nearest-centroid image classification and
//     a rule-based fall detector for the remaining services (§2.2, §4.3).
package vision

import (
	"fmt"
	"math"
)

// Point is a 2D image coordinate in pixels (or normalized units, per
// context).
type Point struct {
	X, Y float64
}

// Sub returns p - q.
func (p Point) Sub(q Point) Point { return Point{X: p.X - q.X, Y: p.Y - q.Y} }

// Dist returns the Euclidean distance between p and q.
func (p Point) Dist(q Point) float64 {
	dx, dy := p.X-q.X, p.Y-q.Y
	return math.Sqrt(dx*dx + dy*dy)
}

// DistSq returns the squared Euclidean distance between p and q. Prefer it
// over Dist in nearest-neighbour comparisons where only the ordering
// matters: squaring is monotone, so the sqrt buys nothing but latency.
func (p Point) DistSq(q Point) float64 {
	dx, dy := p.X-q.X, p.Y-q.Y
	return dx*dx + dy*dy
}

// NumKeypoints is the number of pose keypoints, matching the paper's
// 17-keypoint 2D pose detector (COCO layout).
const NumKeypoints = 17

// Keypoint indices in the COCO ordering.
const (
	Nose = iota
	LeftEye
	RightEye
	LeftEar
	RightEar
	LeftShoulder
	RightShoulder
	LeftElbow
	RightElbow
	LeftWrist
	RightWrist
	LeftHip
	RightHip
	LeftKnee
	RightKnee
	LeftAnkle
	RightAnkle
)

// KeypointNames maps keypoint indices to their conventional names.
var KeypointNames = [NumKeypoints]string{
	"nose", "left_eye", "right_eye", "left_ear", "right_ear",
	"left_shoulder", "right_shoulder", "left_elbow", "right_elbow",
	"left_wrist", "right_wrist", "left_hip", "right_hip",
	"left_knee", "right_knee", "left_ankle", "right_ankle",
}

// Bones are the skeleton edges drawn by the renderer and overlay.
var Bones = [][2]int{
	{LeftShoulder, RightShoulder},
	{LeftShoulder, LeftElbow}, {LeftElbow, LeftWrist},
	{RightShoulder, RightElbow}, {RightElbow, RightWrist},
	{LeftShoulder, LeftHip}, {RightShoulder, RightHip},
	{LeftHip, RightHip},
	{LeftHip, LeftKnee}, {LeftKnee, LeftAnkle},
	{RightHip, RightKnee}, {RightKnee, RightAnkle},
}

// Box is an axis-aligned bounding box in pixel coordinates.
type Box struct {
	MinX, MinY, MaxX, MaxY float64
}

// Width reports the box width.
func (b Box) Width() float64 { return b.MaxX - b.MinX }

// Height reports the box height.
func (b Box) Height() float64 { return b.MaxY - b.MinY }

// Center reports the box center point.
func (b Box) Center() Point { return Point{X: (b.MinX + b.MaxX) / 2, Y: (b.MinY + b.MaxY) / 2} }

// Contains reports whether p lies inside the box.
func (b Box) Contains(p Point) bool {
	return p.X >= b.MinX && p.X <= b.MaxX && p.Y >= b.MinY && p.Y <= b.MaxY
}

// Pose is a detected or synthesized 2D human pose: 17 keypoints, a person
// bounding box and a detector confidence score.
type Pose struct {
	Keypoints [NumKeypoints]Point
	Box       Box
	Score     float64
}

// HipCenter returns the midpoint of the two hips — the origin used for
// framewise normalization (paper §4.1.2: "(0,0) is located at the average
// of the left and right hips").
func (p Pose) HipCenter() Point {
	l, r := p.Keypoints[LeftHip], p.Keypoints[RightHip]
	return Point{X: (l.X + r.X) / 2, Y: (l.Y + r.Y) / 2}
}

// Normalize returns the pose translated so the hip center is the origin and
// scaled by the torso length, making features invariant to subject position
// and size.
func (p Pose) Normalize() Pose {
	hc := p.HipCenter()
	sc := Point{
		X: (p.Keypoints[LeftShoulder].X + p.Keypoints[RightShoulder].X) / 2,
		Y: (p.Keypoints[LeftShoulder].Y + p.Keypoints[RightShoulder].Y) / 2,
	}
	torso := hc.Dist(sc)
	if torso < 1e-9 {
		torso = 1
	}
	out := p
	for i, kp := range p.Keypoints {
		out.Keypoints[i] = Point{X: (kp.X - hc.X) / torso, Y: (kp.Y - hc.Y) / torso}
	}
	out.Box = Box{
		MinX: (p.Box.MinX - hc.X) / torso, MinY: (p.Box.MinY - hc.Y) / torso,
		MaxX: (p.Box.MaxX - hc.X) / torso, MaxY: (p.Box.MaxY - hc.Y) / torso,
	}
	return out
}

// Features flattens the normalized keypoints into a feature vector of
// length 2*NumKeypoints.
func (p Pose) Features() []float64 {
	n := p.Normalize()
	out := make([]float64, 0, 2*NumKeypoints)
	for _, kp := range n.Keypoints {
		out = append(out, kp.X, kp.Y)
	}
	return out
}

// BoundingBox computes the tight box around the keypoints with a margin.
func (p Pose) BoundingBox(margin float64) Box {
	b := Box{MinX: math.Inf(1), MinY: math.Inf(1), MaxX: math.Inf(-1), MaxY: math.Inf(-1)}
	for _, kp := range p.Keypoints {
		b.MinX = math.Min(b.MinX, kp.X)
		b.MinY = math.Min(b.MinY, kp.Y)
		b.MaxX = math.Max(b.MaxX, kp.X)
		b.MaxY = math.Max(b.MaxY, kp.Y)
	}
	b.MinX -= margin
	b.MinY -= margin
	b.MaxX += margin
	b.MaxY += margin
	return b
}

// ToMap converts the pose to plain Go data for JSON transfer between
// services and script modules.
func (p Pose) ToMap() map[string]any {
	kps := make([]any, NumKeypoints)
	for i, kp := range p.Keypoints {
		kps[i] = map[string]any{"name": KeypointNames[i], "x": kp.X, "y": kp.Y}
	}
	return map[string]any{
		"keypoints": kps,
		"box": map[string]any{
			"min_x": p.Box.MinX, "min_y": p.Box.MinY,
			"max_x": p.Box.MaxX, "max_y": p.Box.MaxY,
		},
		"score": p.Score,
	}
}

// PoseFromMap parses the ToMap representation.
func PoseFromMap(m map[string]any) (Pose, error) {
	var p Pose
	kps, ok := m["keypoints"].([]any)
	if !ok || len(kps) != NumKeypoints {
		return Pose{}, fmt.Errorf("vision: pose map has %d keypoints, want %d", len(kps), NumKeypoints)
	}
	for i, raw := range kps {
		kp, ok := raw.(map[string]any)
		if !ok {
			return Pose{}, fmt.Errorf("vision: keypoint %d is not an object", i)
		}
		x, okx := toFloat(kp["x"])
		y, oky := toFloat(kp["y"])
		if !okx || !oky {
			return Pose{}, fmt.Errorf("vision: keypoint %d has non-numeric coordinates", i)
		}
		p.Keypoints[i] = Point{X: x, Y: y}
	}
	if box, ok := m["box"].(map[string]any); ok {
		p.Box.MinX, _ = toFloat(box["min_x"])
		p.Box.MinY, _ = toFloat(box["min_y"])
		p.Box.MaxX, _ = toFloat(box["max_x"])
		p.Box.MaxY, _ = toFloat(box["max_y"])
	}
	if s, ok := toFloat(m["score"]); ok {
		p.Score = s
	}
	return p, nil
}

func toFloat(v any) (float64, bool) {
	switch x := v.(type) {
	case float64:
		return x, true
	case int:
		return float64(x), true
	default:
		return 0, false
	}
}
