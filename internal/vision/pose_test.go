package vision

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestHipCenter(t *testing.T) {
	var p Pose
	p.Keypoints[LeftHip] = Point{X: 10, Y: 20}
	p.Keypoints[RightHip] = Point{X: 30, Y: 40}
	hc := p.HipCenter()
	if hc.X != 20 || hc.Y != 30 {
		t.Errorf("HipCenter = %v, want (20,30)", hc)
	}
}

func TestNormalizeCentersHips(t *testing.T) {
	p := SynthesizePose(Squat, 0.3, DefaultSubject(), nil)
	n := p.Normalize()
	hc := n.HipCenter()
	if math.Abs(hc.X) > 1e-9 || math.Abs(hc.Y) > 1e-9 {
		t.Errorf("normalized hip center = %v, want origin", hc)
	}
}

func TestNormalizeInvariance(t *testing.T) {
	// Property: features are invariant to subject translation and scale.
	base := Subject{CenterX: 320, CenterY: 260, Scale: 80}
	ref := SynthesizePose(JumpingJack, 0.4, base, nil).Features()

	check := func(dx, dy int8, scaleSel uint8) bool {
		s := base
		s.CenterX += float64(dx)
		s.CenterY += float64(dy)
		s.Scale = 40 + float64(scaleSel%100) // 40-139 px torso
		got := SynthesizePose(JumpingJack, 0.4, s, nil).Features()
		for i := range ref {
			if math.Abs(got[i]-ref[i]) > 1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestFeaturesLength(t *testing.T) {
	p := SynthesizePose(Idle, 0, DefaultSubject(), nil)
	if got := len(p.Features()); got != 2*NumKeypoints {
		t.Errorf("Features length = %d, want %d", got, 2*NumKeypoints)
	}
}

func TestBoundingBoxContainsKeypoints(t *testing.T) {
	for _, a := range AllActivities {
		p := SynthesizePose(a, 0.5, DefaultSubject(), nil)
		box := p.BoundingBox(0)
		for i, kp := range p.Keypoints {
			if !box.Contains(kp) {
				t.Errorf("%s: keypoint %s outside bounding box", a, KeypointNames[i])
			}
		}
		if box.Width() <= 0 || box.Height() <= 0 {
			t.Errorf("%s: degenerate box %+v", a, box)
		}
	}
}

func TestPoseMapRoundTrip(t *testing.T) {
	p := SynthesizePose(Wave, 0.7, DefaultSubject(), rand.New(rand.NewSource(1)))
	m := p.ToMap()
	got, err := PoseFromMap(m)
	if err != nil {
		t.Fatalf("PoseFromMap: %v", err)
	}
	for i := range p.Keypoints {
		if p.Keypoints[i].Dist(got.Keypoints[i]) > 1e-9 {
			t.Errorf("keypoint %d differs after round trip", i)
		}
	}
	if got.Score != p.Score {
		t.Errorf("score = %v, want %v", got.Score, p.Score)
	}
	if got.Box != p.Box {
		t.Errorf("box = %+v, want %+v", got.Box, p.Box)
	}
}

func TestPoseFromMapErrors(t *testing.T) {
	if _, err := PoseFromMap(map[string]any{}); err == nil {
		t.Error("empty map accepted")
	}
	if _, err := PoseFromMap(map[string]any{"keypoints": []any{1, 2}}); err == nil {
		t.Error("short keypoint list accepted")
	}
	bad := make([]any, NumKeypoints)
	for i := range bad {
		bad[i] = "not an object"
	}
	if _, err := PoseFromMap(map[string]any{"keypoints": bad}); err == nil {
		t.Error("malformed keypoints accepted")
	}
}

func TestActivityStringParse(t *testing.T) {
	for _, a := range AllActivities {
		got, err := ParseActivity(a.String())
		if err != nil || got != a {
			t.Errorf("ParseActivity(%q) = %v, %v", a.String(), got, err)
		}
	}
	if _, err := ParseActivity("moonwalk"); err == nil {
		t.Error("ParseActivity(moonwalk) succeeded")
	}
	if Activity(0).String() == "" {
		t.Error("invalid activity has empty String")
	}
}

func TestSynthesizedPosesWithinFrame(t *testing.T) {
	s := DefaultSubject()
	for _, a := range AllActivities {
		for _, phase := range []float64{0, 0.25, 0.5, 0.75, 0.99} {
			p := SynthesizePose(a, phase, s, nil)
			for i, kp := range p.Keypoints {
				if kp.X < 0 || kp.X > 640 || kp.Y < 0 || kp.Y > 480 {
					t.Errorf("%s phase %.2f: keypoint %s at %v outside 640x480", a, phase, KeypointNames[i], kp)
				}
			}
		}
	}
}

func TestActivitiesAreDistinct(t *testing.T) {
	// At mid-cycle, each activity's normalized pose should differ from the
	// others' — otherwise the classifier task is ill-posed.
	phase := 0.5
	feats := map[Activity][]float64{}
	for _, a := range []Activity{Idle, Squat, JumpingJack, OverheadPress, Lunge, Wave, Clap} {
		feats[a] = SynthesizePose(a, phase, DefaultSubject(), nil).Features()
	}
	for a, fa := range feats {
		for b, fb := range feats {
			if a >= b {
				continue
			}
			if d := sqDist(fa, fb); d < 1e-3 {
				t.Errorf("%s and %s have nearly identical mid-cycle poses (d=%g)", a, b, d)
			}
		}
	}
}

func TestSquatLowersHips(t *testing.T) {
	rest := SynthesizePose(Squat, 0, DefaultSubject(), nil)
	deep := SynthesizePose(Squat, 0.5, DefaultSubject(), nil)
	if deep.HipCenter().Y <= rest.HipCenter().Y+10 {
		t.Errorf("squat mid-cycle hips at %.1f, rest at %.1f; want significantly lower (larger y)",
			deep.HipCenter().Y, rest.HipCenter().Y)
	}
}

func TestJumpingJackRaisesArms(t *testing.T) {
	rest := SynthesizePose(JumpingJack, 0, DefaultSubject(), nil)
	up := SynthesizePose(JumpingJack, 0.5, DefaultSubject(), nil)
	if up.Keypoints[LeftWrist].Y >= rest.Keypoints[LeftWrist].Y {
		t.Error("jumping jack mid-cycle left wrist not raised")
	}
	if up.Keypoints[RightWrist].Y >= rest.Keypoints[RightWrist].Y {
		t.Error("jumping jack mid-cycle right wrist not raised")
	}
	// Wrists end above the nose at the top of the jack.
	if up.Keypoints[LeftWrist].Y >= up.Keypoints[Nose].Y {
		t.Error("jumping jack wrists not overhead at mid-cycle")
	}
}

func TestFallTiltsTorso(t *testing.T) {
	up := SynthesizePose(Fall, 0, DefaultSubject(), nil)
	down := SynthesizePose(Fall, 0.9, DefaultSubject(), nil)
	tilt := func(p Pose) float64 {
		hip := p.HipCenter()
		sh := Point{
			X: (p.Keypoints[LeftShoulder].X + p.Keypoints[RightShoulder].X) / 2,
			Y: (p.Keypoints[LeftShoulder].Y + p.Keypoints[RightShoulder].Y) / 2,
		}
		return math.Atan2(math.Abs(sh.X-hip.X), math.Abs(hip.Y-sh.Y))
	}
	if tilt(up) > math.Pi/8 {
		t.Errorf("fall start tilt %.2f rad, want near upright", tilt(up))
	}
	if tilt(down) < math.Pi/3 {
		t.Errorf("fall end tilt %.2f rad, want near horizontal", tilt(down))
	}
}

func TestSynthesizeSequencePhases(t *testing.T) {
	poses, phases := SynthesizeSequence(Squat, 30, 15, 0.5, DefaultSubject(), nil)
	if len(poses) != 30 || len(phases) != 30 {
		t.Fatalf("lengths %d, %d", len(poses), len(phases))
	}
	// 30 frames at 15fps = 2s at 0.5 reps/s = 1 full rep of phase.
	if got := phases[29] - phases[0]; math.Abs(got-29.0/15.0*0.5) > 1e-9 {
		t.Errorf("phase progression = %v", got)
	}
}

func TestNoiseChangesPose(t *testing.T) {
	s := DefaultSubject()
	rng := rand.New(rand.NewSource(7))
	a := SynthesizePose(Squat, 0.3, s, rng)
	b := SynthesizePose(Squat, 0.3, s, rng)
	same := true
	for i := range a.Keypoints {
		if a.Keypoints[i] != b.Keypoints[i] {
			same = false
		}
	}
	if same {
		t.Error("noise did not perturb keypoints")
	}
	// Without rng, output is deterministic.
	c := SynthesizePose(Squat, 0.3, s, nil)
	d := SynthesizePose(Squat, 0.3, s, nil)
	for i := range c.Keypoints {
		if c.Keypoints[i] != d.Keypoints[i] {
			t.Fatal("deterministic synthesis differs between calls")
		}
	}
}

func TestBoxHelpers(t *testing.T) {
	b := Box{MinX: 10, MinY: 20, MaxX: 30, MaxY: 60}
	if b.Width() != 20 || b.Height() != 40 {
		t.Errorf("Width/Height = %v/%v", b.Width(), b.Height())
	}
	if c := b.Center(); c.X != 20 || c.Y != 40 {
		t.Errorf("Center = %v", c)
	}
	if !b.Contains(Point{X: 15, Y: 25}) || b.Contains(Point{X: 5, Y: 25}) {
		t.Error("Contains wrong")
	}
}
