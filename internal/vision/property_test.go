package vision

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"videopipe/internal/frame"
)

func TestNormalizeIdempotentOnFeatures(t *testing.T) {
	// Property: normalizing an already-normalized pose leaves its feature
	// vector unchanged (the transform is a projection).
	check := func(seed int64, actSel uint8, phase16 uint16) bool {
		acts := AllActivities
		act := acts[int(actSel)%len(acts)]
		phase := float64(phase16) / 65536
		rng := rand.New(rand.NewSource(seed))
		p := SynthesizePose(act, phase, DefaultSubject(), rng)
		once := p.Normalize()
		twice := once.Normalize()
		f1 := once.Features()
		f2 := twice.Features()
		for i := range f1 {
			if math.Abs(f1[i]-f2[i]) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestRepAccuracyBounds(t *testing.T) {
	// Property: accuracy is always in [0, 1], symmetric in over/under
	// counting by the same absolute error.
	check := func(pred, truth uint8) bool {
		a := RepAccuracy(int(pred), int(truth))
		if a < 0 || a > 1 {
			return false
		}
		if truth > 0 {
			over := RepAccuracy(int(truth)+3, int(truth))
			under := RepAccuracy(int(truth)-3, int(truth))
			if int(truth) >= 3 && math.Abs(over-under) > 1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, nil); err != nil {
		t.Error(err)
	}
}

func TestDetectObjectsFindsRandomRect(t *testing.T) {
	// Property: a single drawn object is detected with a box covering it.
	labels := ObjectClassNames()
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		f := frame.MustNew(160, 120)
		f.Fill(backgroundColor)
		label := labels[rng.Intn(len(labels))]
		x0 := 5 + rng.Intn(100)
		y0 := 5 + rng.Intn(70)
		w := 8 + rng.Intn(40)
		h := 8 + rng.Intn(30)
		DrawObject(f, label, x0, y0, x0+w, y0+h)

		dets := DetectObjects(f)
		if len(dets) != 1 || dets[0].Label != label {
			return false
		}
		b := dets[0].Box
		return b.MinX <= float64(x0) && b.MinY <= float64(y0) &&
			b.MaxX >= float64(minI(x0+w, 159)) && b.MaxY >= float64(minI(y0+h, 119))
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func minI(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func TestDetectPoseStableUnderTranslation(t *testing.T) {
	// Property: moving the subject moves the detected keypoints by the
	// same offset (within pixel rounding).
	base := Subject{CenterX: 200, CenterY: 180, Scale: 50}
	f0 := frame.MustNew(400, 300)
	RenderScene(f0, SynthesizePose(Squat, 0.3, base, nil))
	p0, ok := DetectPose(f0)
	if !ok {
		t.Fatal("base pose undetected")
	}

	check := func(dx8, dy8 int8) bool {
		dx := float64(dx8 % 40)
		dy := float64(dy8 % 30)
		s := base
		s.CenterX += dx
		s.CenterY += dy
		f := frame.MustNew(400, 300)
		RenderScene(f, SynthesizePose(Squat, 0.3, s, nil))
		p, ok := DetectPose(f)
		if !ok {
			return false
		}
		for i := range p.Keypoints {
			gotDx := p.Keypoints[i].X - p0.Keypoints[i].X
			gotDy := p.Keypoints[i].Y - p0.Keypoints[i].Y
			if math.Abs(gotDx-dx) > 1.5 || math.Abs(gotDy-dy) > 1.5 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestRepCounterStateRoundTripProperty(t *testing.T) {
	// Property: marshal/restore at any point mid-stream produces a counter
	// that finishes with the same count as one that ran uninterrupted.
	check := func(seed int64, cutSel uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		sub := DefaultSubject()
		sub.Noise = 2
		poses, _ := SynthesizeSequence(Squat, 120, 15, 0.5, sub, rng)
		cut := 1 + int(cutSel)%(len(poses)-2)

		straight := NewRepCounter(0, 0)
		for _, p := range poses {
			straight.Observe(p)
		}

		first := NewRepCounter(0, 0)
		for _, p := range poses[:cut] {
			first.Observe(p)
		}
		blob, err := first.MarshalState()
		if err != nil {
			return false
		}
		second, err := RestoreRepCounter(blob)
		if err != nil {
			return false
		}
		for _, p := range poses[cut:] {
			second.Observe(p)
		}
		return second.Reps() == straight.Reps() && second.FramesSeen() == straight.FramesSeen()
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestFallDetectorStateRoundTrip(t *testing.T) {
	poses, _ := SynthesizeSequence(Fall, 60, 15, 0.4, DefaultSubject(), rand.New(rand.NewSource(8)))
	cut := 25

	straight := NewFallDetector()
	for _, p := range poses {
		straight.Observe(p)
	}

	first := NewFallDetector()
	for _, p := range poses[:cut] {
		first.Observe(p)
	}
	blob, err := first.MarshalState()
	if err != nil {
		t.Fatalf("MarshalState: %v", err)
	}
	second, err := RestoreFallDetector(blob)
	if err != nil {
		t.Fatalf("RestoreFallDetector: %v", err)
	}
	for _, p := range poses[cut:] {
		second.Observe(p)
	}
	if second.Fallen() != straight.Fallen() {
		t.Errorf("state round trip diverged: %v vs %v", second.Fallen(), straight.Fallen())
	}
	if !straight.Fallen() {
		t.Error("fall sequence not detected by either")
	}
}

func TestRestoreRejectsCorruptState(t *testing.T) {
	if _, err := RestoreRepCounter([]byte("{not json")); err == nil {
		t.Error("corrupt rep state accepted")
	}
	if _, err := RestoreFallDetector([]byte("{not json")); err == nil {
		t.Error("corrupt fall state accepted")
	}
	// Fitted state without centroids is inconsistent.
	if _, err := RestoreRepCounter([]byte(`{"fitted": true}`)); err == nil {
		t.Error("inconsistent rep state accepted")
	}
	// Empty blobs mean fresh state.
	if rc, err := RestoreRepCounter(nil); err != nil || rc.FramesSeen() != 0 {
		t.Errorf("empty rep blob: %v", err)
	}
	if fd, err := RestoreFallDetector(nil); err != nil || fd.Fallen() {
		t.Errorf("empty fall blob: %v", err)
	}
}

func TestImageFeaturesStable(t *testing.T) {
	// Property: features are deterministic and bounded in [0, 1].
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		f := frame.MustNew(32, 24)
		for i := range f.Pix {
			f.Pix[i] = byte(rng.Intn(256))
		}
		a := ImageFeatures(f)
		b := ImageFeatures(f)
		for i := range a {
			if a[i] != b[i] || a[i] < 0 || a[i] > 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
