package vision

import (
	"image/color"
	"time"

	"videopipe/internal/frame"
)

// Keypoint marker colors. Each joint is rendered as a small disc of a
// distinctive color drawn from the {0,128,255} lattice; pairwise RGB
// distances stay >= ~127, which survives JPEG compression well enough for
// the pixel-level detector to classify marker pixels by nearest color.
// This marker scheme is what makes the pose "detectable" from pixels —
// the synthetic stand-in for texture a DNN would key on.
var markerColors = [NumKeypoints]color.RGBA{
	{R: 255, A: 255},                 // nose
	{G: 255, A: 255},                 // left eye
	{B: 255, A: 255},                 // right eye
	{R: 255, G: 255, A: 255},         // left ear
	{R: 255, B: 255, A: 255},         // right ear
	{G: 255, B: 255, A: 255},         // left shoulder
	{R: 255, G: 128, A: 255},         // right shoulder
	{R: 128, B: 255, A: 255},         // left elbow
	{G: 128, B: 255, A: 255},         // right elbow
	{R: 255, B: 128, A: 255},         // left wrist
	{R: 128, G: 255, A: 255},         // right wrist
	{G: 255, B: 128, A: 255},         // left hip
	{R: 255, G: 128, B: 255, A: 255}, // right hip
	{R: 128, G: 128, B: 255, A: 255}, // left knee
	{R: 255, G: 128, B: 128, A: 255}, // right knee
	{R: 128, G: 255, B: 255, A: 255}, // left ankle
	{R: 255, G: 255, B: 128, A: 255}, // right ankle
}

// Scene parameters shared by renderer and detector.
var (
	backgroundColor = color.RGBA{R: 16, G: 16, B: 16, A: 255}
	skeletonColor   = color.RGBA{R: 72, G: 72, B: 72, A: 255}
	headColor       = color.RGBA{R: 80, G: 64, B: 56, A: 255}
)

// markerRadius is the rendered joint disc radius in pixels.
const markerRadius = 3

// RenderPose draws a pose into f: skeleton bones, head disc, then joint
// markers on top. The frame should be filled with the scene background
// first (RenderScene does both).
func RenderPose(f *frame.Frame, p Pose) {
	for _, bone := range Bones {
		a, b := p.Keypoints[bone[0]], p.Keypoints[bone[1]]
		f.DrawLine(int(a.X), int(a.Y), int(b.X), int(b.Y), skeletonColor)
	}
	nose := p.Keypoints[Nose]
	f.DrawCircle(int(nose.X), int(nose.Y), markerRadius+2, headColor)
	for i, kp := range p.Keypoints {
		f.DrawCircle(int(kp.X), int(kp.Y), markerRadius, markerColors[i])
	}
}

// RenderScene fills a frame with the synthetic camera scene: background
// plus the subject's pose. The background clear — the only full-frame pass
// the renderer makes — runs row-parallel across the shared worker group;
// the pose drawing touches a few thousand pixels and stays serial.
func RenderScene(f *frame.Frame, p Pose) {
	fillBackground(f)
	RenderPose(f, p)
}

// fillBackground clears the frame: row 0 is painted once by copy-doubling,
// then the remaining rows copy it, striped across workers.
func fillBackground(f *frame.Frame) {
	stride := f.Width * 4
	if stride <= 0 || f.Height <= 0 {
		return
	}
	row0 := f.Pix[:stride]
	row0[0] = backgroundColor.R
	row0[1] = backgroundColor.G
	row0[2] = backgroundColor.B
	row0[3] = backgroundColor.A
	for filled := 4; filled < stride; filled *= 2 {
		copy(row0[filled:], row0[:filled])
	}
	frame.Stripes(f.Height-1, func(lo, hi int) {
		for y := lo + 1; y < hi+1; y++ {
			copy(f.Pix[y*stride:(y+1)*stride], row0)
		}
	})
}

// SceneRenderer returns a frame.Renderer producing an exercising subject,
// for use as a pipeline video source: the given activity at repRate reps
// per second, captured at the idealized camera position. Frames draw their
// buffers from the frame pool; the emit callback (or the store the frame
// lands in) owns the Release.
func SceneRenderer(width, height int, a Activity, repRate float64, s Subject) frame.Renderer {
	return func(seq uint64, elapsed time.Duration) (*frame.Frame, error) {
		f, err := frame.NewPooled(width, height)
		if err != nil {
			return nil, err
		}
		phase := s.Phase0 + elapsed.Seconds()*repRate
		if a == Fall {
			phase = minF(elapsed.Seconds()*repRate, 0.999)
		}
		pose := SynthesizePose(a, phase, s, nil)
		RenderScene(f, pose)
		return f, nil
	}
}

func minF(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}
