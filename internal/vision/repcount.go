package vision

import (
	"fmt"
	"math"
)

// RepCounter implements the paper's rep counting algorithm (§4.1.3):
//
//	"We use k-means with k = 2 to classify the frames into a cluster that
//	occurs near the start of the exercise and a cluster that occurs near
//	the end of an exercise. To avoid issues with boundary cases, we
//	require 4 frames to have transitioned to count a state transition …
//	We count a state transition from and back to the initial state as a
//	single rep."
//
// The counter consumes framewise poses online. It buffers an initial
// calibration window, fits 2-means over those frames' normalized features,
// labels every subsequent frame by nearest centroid with a 4-frame
// debounce, and counts a rep per return to the initial cluster.
type RepCounter struct {
	// DebounceFrames is the number of consecutive frames in the other
	// cluster required to accept a state transition. The paper uses 4.
	debounce int
	// calibration frames required before counting starts.
	calibration int

	buf       [][]float64
	centroids [2][]float64
	fitted    bool

	initialState int
	state        int
	pendingState int
	pendingCount int
	leftInitial  bool
	reps         int
	framesSeen   int
}

// DefaultDebounce is the paper's 4-frame transition requirement.
const DefaultDebounce = 4

// defaultCalibration frames cover at least one full rep at typical rates
// before the clusters are fitted.
const defaultCalibration = 40

// NewRepCounter creates a counter. debounce <= 0 selects the paper's 4;
// calibration <= 0 selects a default one-rep window.
func NewRepCounter(debounce, calibration int) *RepCounter {
	if debounce <= 0 {
		debounce = DefaultDebounce
	}
	if calibration <= 0 {
		calibration = defaultCalibration
	}
	return &RepCounter{debounce: debounce, calibration: calibration, state: -1, pendingState: -1}
}

// Reps reports the number of completed reps.
func (rc *RepCounter) Reps() int { return rc.reps }

// FramesSeen reports how many frames have been observed.
func (rc *RepCounter) FramesSeen() int { return rc.framesSeen }

// Calibrated reports whether the 2-means model has been fitted.
func (rc *RepCounter) Calibrated() bool { return rc.fitted }

// Observe consumes one pose and returns the current rep count.
func (rc *RepCounter) Observe(p Pose) int {
	rc.framesSeen++
	feats := p.Features()

	if !rc.fitted {
		rc.buf = append(rc.buf, feats)
		if len(rc.buf) >= rc.calibration {
			rc.fit()
			// Replay the calibration buffer through the state machine so
			// reps performed during calibration are counted too.
			buf := rc.buf
			rc.buf = nil
			for _, f := range buf {
				rc.observeLabeled(rc.nearest(f))
			}
		}
		return rc.reps
	}
	rc.observeLabeled(rc.nearest(feats))
	return rc.reps
}

// fit runs 2-means over the calibration buffer (Lloyd's algorithm with
// farthest-point initialization, which is deterministic).
func (rc *RepCounter) fit() {
	n := len(rc.buf)
	dim := len(rc.buf[0])

	// Initialize: first centroid = first frame; second = farthest frame.
	c0 := append([]float64(nil), rc.buf[0]...)
	far, farDist := 0, -1.0
	for i, f := range rc.buf {
		if d := sqDist(f, c0); d > farDist {
			far, farDist = i, d
		}
	}
	c1 := append([]float64(nil), rc.buf[far]...)
	rc.centroids[0], rc.centroids[1] = c0, c1

	assign := make([]int, n)
	for iter := 0; iter < 50; iter++ {
		changed := false
		for i, f := range rc.buf {
			a := rc.nearest(f)
			if a != assign[i] {
				assign[i] = a
				changed = true
			}
		}
		var sums [2][]float64
		var counts [2]int
		sums[0] = make([]float64, dim)
		sums[1] = make([]float64, dim)
		for i, f := range rc.buf {
			a := assign[i]
			counts[a]++
			for j, v := range f {
				sums[a][j] += v
			}
		}
		for a := 0; a < 2; a++ {
			if counts[a] == 0 {
				continue
			}
			for j := range sums[a] {
				rc.centroids[a][j] = sums[a][j] / float64(counts[a])
			}
		}
		if !changed && iter > 0 {
			break
		}
	}

	// The initial state is the cluster of the earliest frames: take the
	// majority over the first debounce-length prefix.
	votes := 0
	prefix := rc.debounce
	if prefix > n {
		prefix = n
	}
	for i := 0; i < prefix; i++ {
		if rc.nearest(rc.buf[i]) == 0 {
			votes++
		}
	}
	rc.initialState = 1
	if votes*2 >= prefix {
		rc.initialState = 0
	}
	rc.state = rc.initialState
	rc.fitted = true
}

// nearest labels a frame by nearest centroid on squared distance (ordering
// only — no sqrt), abandoning the second distance once it can't win.
func (rc *RepCounter) nearest(f []float64) int {
	d0 := sqDist(f, rc.centroids[0])
	if sqDistLimit(f, rc.centroids[1], d0) >= d0 {
		return 0
	}
	return 1
}

// observeLabeled advances the debounced two-state machine: a transition is
// accepted only after `debounce` consecutive frames in the other state; a
// completed excursion from the initial state and back counts one rep.
func (rc *RepCounter) observeLabeled(label int) {
	if label == rc.state {
		rc.pendingState = -1
		rc.pendingCount = 0
		return
	}
	if label != rc.pendingState {
		rc.pendingState = label
		rc.pendingCount = 0
	}
	rc.pendingCount++
	if rc.pendingCount < rc.debounce {
		return
	}
	// Accepted transition.
	rc.state = label
	rc.pendingState = -1
	rc.pendingCount = 0
	if rc.state != rc.initialState {
		rc.leftInitial = true
	} else if rc.leftInitial {
		rc.reps++
		rc.leftInitial = false
	}
}

// Reset clears all counter state, keeping configuration.
func (rc *RepCounter) Reset() {
	rc.buf = nil
	rc.fitted = false
	rc.initialState = 0
	rc.state = -1
	rc.pendingState = -1
	rc.pendingCount = 0
	rc.leftInitial = false
	rc.reps = 0
	rc.framesSeen = 0
}

// CountReps is the batch interface: feed a full pose sequence and return
// the final count.
func CountReps(poses []Pose, debounce, calibration int) int {
	rc := NewRepCounter(debounce, calibration)
	for _, p := range poses {
		rc.Observe(p)
	}
	return rc.Reps()
}

// RepAccuracy scores a predicted count against ground truth the way the
// paper's test set does: 1 - |pred - truth| / truth, floored at zero.
func RepAccuracy(pred, truth int) float64 {
	if truth == 0 {
		if pred == 0 {
			return 1
		}
		return 0
	}
	acc := 1 - math.Abs(float64(pred-truth))/float64(truth)
	if acc < 0 {
		return 0
	}
	return acc
}

// String summarizes counter state for diagnostics.
func (rc *RepCounter) String() string {
	return fmt.Sprintf("reps=%d frames=%d calibrated=%v", rc.reps, rc.framesSeen, rc.fitted)
}
