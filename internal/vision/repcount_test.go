package vision

import (
	"math/rand"
	"testing"

	"videopipe/internal/frame"
)

func TestRepCounterCountsCleanSquats(t *testing.T) {
	// 6 reps at 0.5 reps/s, 15 fps => 180 frames.
	sub := DefaultSubject()
	sub.Noise = 1
	poses, _ := SynthesizeSequence(Squat, 181, 15, 0.5, sub, rand.New(rand.NewSource(2)))
	got := CountReps(poses, DefaultDebounce, 0)
	if got < 5 || got > 7 {
		t.Errorf("counted %d reps, want ~6", got)
	}
}

func TestRepCounterAllExercises(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for _, ex := range Exercises {
		sub := DefaultSubject()
		sub.Noise = 1.5
		truth := 5
		fps, rate := 15.0, 0.5
		frames := int(float64(truth)/rate*fps) + 1
		poses, _ := SynthesizeSequence(ex, frames, fps, rate, sub, rng)
		got := CountReps(poses, DefaultDebounce, 0)
		if RepAccuracy(got, truth) < 0.6 {
			t.Errorf("%s: counted %d reps, truth %d", ex, got, truth)
		}
	}
}

func TestRepCounterIdleCountsZero(t *testing.T) {
	sub := DefaultSubject()
	sub.Noise = 1
	poses, _ := SynthesizeSequence(Idle, 150, 15, 0.5, sub, rand.New(rand.NewSource(3)))
	if got := CountReps(poses, DefaultDebounce, 0); got > 1 {
		t.Errorf("idle sequence counted %d reps, want ~0", got)
	}
}

func TestRepCounterDebounceSuppressesFlicker(t *testing.T) {
	// Hand-build a counter already fitted with two centroids, then feed
	// label flicker shorter than the debounce: no transition.
	rc := NewRepCounter(4, 0)
	rc.centroids[0] = []float64{0, 0}
	rc.centroids[1] = []float64{10, 10}
	rc.fitted = true
	rc.initialState = 0
	rc.state = 0

	seq := []int{0, 0, 1, 0, 1, 1, 0, 0, 1, 1, 1, 0} // never 4-in-a-row of 1
	for _, label := range seq {
		rc.observeLabeled(label)
	}
	if rc.Reps() != 0 {
		t.Errorf("flicker produced %d reps, want 0", rc.Reps())
	}
	if rc.state != 0 {
		t.Errorf("flicker changed state to %d", rc.state)
	}

	// A genuine excursion of >= 4 frames out and >= 4 back counts one rep.
	for _, label := range []int{1, 1, 1, 1, 1, 0, 0, 0, 0} {
		rc.observeLabeled(label)
	}
	if rc.Reps() != 1 {
		t.Errorf("excursion produced %d reps, want 1", rc.Reps())
	}
}

func TestRepCounterReset(t *testing.T) {
	rc := NewRepCounter(0, 10)
	sub := DefaultSubject()
	poses, _ := SynthesizeSequence(Squat, 60, 15, 0.5, sub, nil)
	for _, p := range poses {
		rc.Observe(p)
	}
	if !rc.Calibrated() {
		t.Fatal("not calibrated after 60 frames with calibration=10")
	}
	rc.Reset()
	if rc.Reps() != 0 || rc.FramesSeen() != 0 || rc.Calibrated() {
		t.Errorf("Reset left state: %s", rc)
	}
}

func TestRepAccuracy(t *testing.T) {
	cases := []struct {
		pred, truth int
		want        float64
	}{
		{5, 5, 1},
		{4, 5, 0.8},
		{6, 5, 0.8},
		{0, 5, 0},
		{15, 5, 0},
		{0, 0, 1},
		{2, 0, 0},
	}
	for _, c := range cases {
		if got := RepAccuracy(c.pred, c.truth); got != c.want {
			t.Errorf("RepAccuracy(%d, %d) = %v, want %v", c.pred, c.truth, got, c.want)
		}
	}
}

// TestRepCounterAccuracy reproduces the paper's §4.1.3 claim (experiment
// E5): rep counting accuracy on a withheld test set around 83%.
func TestRepCounterAccuracy(t *testing.T) {
	trials, mean, err := EvaluateRepCounting(24, 42)
	if err != nil {
		t.Fatalf("EvaluateRepCounting: %v", err)
	}
	if len(trials) != 24 {
		t.Fatalf("got %d trials", len(trials))
	}
	t.Logf("rep counting mean accuracy = %.1f%% over %d trials (paper reports 83.3%%)", mean*100, len(trials))
	if mean < 0.75 {
		t.Errorf("mean accuracy = %.3f, want >= 0.75 (paper: 0.833)", mean)
	}
}

func TestEvaluateRepCountingValidation(t *testing.T) {
	if _, _, err := EvaluateRepCounting(0, 1); err == nil {
		t.Error("zero trials accepted")
	}
}

func TestRepCounterEndToEndThroughPixels(t *testing.T) {
	// Full loop: synthesize -> render -> detect -> count. This is the
	// pipeline's actual data path.
	sub := DefaultSubject()
	sub.Noise = 0.5
	truth := 4
	fps, rate := 15.0, 0.5
	n := int(float64(truth)/rate*fps) + 1
	poses, _ := SynthesizeSequence(Squat, n, fps, rate, sub, rand.New(rand.NewSource(9)))

	rc := NewRepCounter(0, 0)
	for _, p := range poses {
		f := frame.MustNew(640, 480)
		RenderScene(f, p)
		det, ok := DetectPose(f)
		if !ok {
			t.Fatal("pose lost during rendering")
		}
		rc.Observe(det)
	}
	if RepAccuracy(rc.Reps(), truth) < 0.7 {
		t.Errorf("pixel-path counted %d reps, truth %d", rc.Reps(), truth)
	}
}

func TestFallDetector(t *testing.T) {
	sub := DefaultSubject()
	sub.Noise = 1

	// A fall sequence triggers detection.
	d := NewFallDetector()
	poses, _ := SynthesizeSequence(Fall, 60, 15, 0.4, sub, rand.New(rand.NewSource(4)))
	fired := false
	for _, p := range poses {
		if d.Observe(p) {
			fired = true
		}
	}
	if !fired || !d.Fallen() {
		t.Error("fall sequence not detected")
	}

	// Squats (which also lower the hips) must not trigger.
	d2 := NewFallDetector()
	squats, _ := SynthesizeSequence(Squat, 120, 15, 0.5, sub, rand.New(rand.NewSource(5)))
	for _, p := range squats {
		if d2.Observe(p) {
			t.Fatal("squat sequence triggered fall detection")
		}
	}

	// Reset clears the alarm.
	d.Reset()
	if d.Fallen() {
		t.Error("Reset did not clear fall state")
	}
}

func TestImageClassifier(t *testing.T) {
	c := NewImageClassifier()
	if _, _, err := c.Classify(frame.MustNew(8, 8)); err == nil {
		t.Error("classify with no classes succeeded")
	}
	if err := c.Train("", frame.MustNew(8, 8)); err == nil {
		t.Error("empty label accepted")
	}

	// Two visually distinct scene classes.
	mkBright := func(seed int64) *frame.Frame {
		rng := rand.New(rand.NewSource(seed))
		f := frame.MustNew(64, 64)
		for i := 0; i < len(f.Pix); i += 4 {
			f.Pix[i] = byte(200 + rng.Intn(55))
			f.Pix[i+1] = byte(180 + rng.Intn(40))
			f.Pix[i+2] = byte(rng.Intn(40))
			f.Pix[i+3] = 255
		}
		return f
	}
	mkDark := func(seed int64) *frame.Frame {
		rng := rand.New(rand.NewSource(seed))
		f := frame.MustNew(64, 64)
		for i := 0; i < len(f.Pix); i += 4 {
			f.Pix[i] = byte(rng.Intn(30))
			f.Pix[i+1] = byte(rng.Intn(30))
			f.Pix[i+2] = byte(100 + rng.Intn(80))
			f.Pix[i+3] = 255
		}
		return f
	}
	for i := int64(0); i < 5; i++ {
		if err := c.Train("daylight", mkBright(i)); err != nil {
			t.Fatalf("Train: %v", err)
		}
		if err := c.Train("night", mkDark(i)); err != nil {
			t.Fatalf("Train: %v", err)
		}
	}
	if got := c.Classes(); len(got) != 2 || got[0] != "daylight" || got[1] != "night" {
		t.Errorf("Classes = %v", got)
	}
	label, conf, err := c.Classify(mkBright(99))
	if err != nil || label != "daylight" {
		t.Errorf("Classify(bright) = %q, %v, %v", label, conf, err)
	}
	label, _, err = c.Classify(mkDark(98))
	if err != nil || label != "night" {
		t.Errorf("Classify(dark) = %q, %v", label, err)
	}
}
