package vision

import (
	"encoding/json"
	"fmt"
	"math"
)

// State serialization for the algorithms that back *stateless* services.
// The paper's services "receive needed data as input so they do not require
// saving state" (§2.2): the module owns the state blob and passes it with
// every call; the service returns the updated blob. These marshallers are
// that blob.

// repCounterState is the wire form of a RepCounter.
type repCounterState struct {
	Debounce     int         `json:"debounce"`
	Calibration  int         `json:"calibration"`
	Buf          [][]float64 `json:"buf,omitempty"`
	Centroid0    []float64   `json:"c0,omitempty"`
	Centroid1    []float64   `json:"c1,omitempty"`
	Fitted       bool        `json:"fitted"`
	InitialState int         `json:"initial_state"`
	State        int         `json:"state"`
	PendingState int         `json:"pending_state"`
	PendingCount int         `json:"pending_count"`
	LeftInitial  bool        `json:"left_initial"`
	Reps         int         `json:"reps"`
	FramesSeen   int         `json:"frames_seen"`
}

// MarshalState serializes the counter for stateless service round trips.
func (rc *RepCounter) MarshalState() ([]byte, error) {
	st := repCounterState{
		Debounce:     rc.debounce,
		Calibration:  rc.calibration,
		Buf:          rc.buf,
		Centroid0:    rc.centroids[0],
		Centroid1:    rc.centroids[1],
		Fitted:       rc.fitted,
		InitialState: rc.initialState,
		State:        rc.state,
		PendingState: rc.pendingState,
		PendingCount: rc.pendingCount,
		LeftInitial:  rc.leftInitial,
		Reps:         rc.reps,
		FramesSeen:   rc.framesSeen,
	}
	data, err := json.Marshal(st)
	if err != nil {
		return nil, fmt.Errorf("vision: marshal rep counter: %w", err)
	}
	return data, nil
}

// RestoreRepCounter reconstructs a counter from MarshalState output. Empty
// input yields a fresh default counter.
func RestoreRepCounter(data []byte) (*RepCounter, error) {
	if len(data) == 0 {
		return NewRepCounter(0, 0), nil
	}
	var st repCounterState
	if err := json.Unmarshal(data, &st); err != nil {
		return nil, fmt.Errorf("vision: restore rep counter: %w", err)
	}
	rc := NewRepCounter(st.Debounce, st.Calibration)
	rc.buf = st.Buf
	rc.centroids[0] = st.Centroid0
	rc.centroids[1] = st.Centroid1
	rc.fitted = st.Fitted
	rc.initialState = st.InitialState
	rc.state = st.State
	rc.pendingState = st.PendingState
	rc.pendingCount = st.PendingCount
	rc.leftInitial = st.LeftInitial
	rc.reps = st.Reps
	rc.framesSeen = st.FramesSeen
	if rc.fitted && (len(rc.centroids[0]) == 0 || len(rc.centroids[1]) == 0) {
		return nil, fmt.Errorf("vision: restore rep counter: fitted state missing centroids")
	}
	return rc, nil
}

// fallDetectorState is the wire form of a FallDetector.
type fallDetectorState struct {
	BaselineHipY float64 `json:"baseline_hip_y"`
	TorsoLen     float64 `json:"torso_len"`
	Samples      int     `json:"samples"`
	DownStreak   int     `json:"down_streak"`
	Fallen       bool    `json:"fallen"`
}

// MarshalState serializes the detector for stateless service round trips.
func (d *FallDetector) MarshalState() ([]byte, error) {
	st := fallDetectorState{
		BaselineHipY: d.baselineHipY,
		TorsoLen:     d.torsoLen,
		Samples:      d.samples,
		DownStreak:   d.downStreak,
		Fallen:       d.fallen,
	}
	data, err := json.Marshal(st)
	if err != nil {
		return nil, fmt.Errorf("vision: marshal fall detector: %w", err)
	}
	return data, nil
}

// RestoreFallDetector reconstructs a detector from MarshalState output.
// Empty input yields a fresh detector.
func RestoreFallDetector(data []byte) (*FallDetector, error) {
	d := NewFallDetector()
	if len(data) == 0 {
		return d, nil
	}
	var st fallDetectorState
	if err := json.Unmarshal(data, &st); err != nil {
		return nil, fmt.Errorf("vision: restore fall detector: %w", err)
	}
	if math.IsNaN(st.BaselineHipY) || math.IsNaN(st.TorsoLen) {
		return nil, fmt.Errorf("vision: restore fall detector: NaN state")
	}
	d.baselineHipY = st.BaselineHipY
	d.torsoLen = st.TorsoLen
	d.samples = st.Samples
	d.downStreak = st.DownStreak
	d.fallen = st.Fallen
	return d, nil
}
