package vision

import (
	"fmt"
	"math"
	"math/rand"
)

// Activity enumerates the motions the applications recognize: the fitness
// exercises (§4.1), the IoT gestures (§4.2) and falling (§4.3). Idle is the
// rest state.
type Activity int

// Activities. Enums start at one; the zero value is invalid.
const (
	Idle Activity = iota + 1
	Squat
	JumpingJack
	OverheadPress
	Lunge
	Wave
	Clap
	Fall
)

// Exercises are the activities the fitness application counts reps for.
var Exercises = []Activity{Squat, JumpingJack, OverheadPress, Lunge}

// Gestures are the activities the IoT control application recognizes.
var Gestures = []Activity{Wave, Clap, Idle}

// AllActivities lists every synthesizable activity.
var AllActivities = []Activity{Idle, Squat, JumpingJack, OverheadPress, Lunge, Wave, Clap, Fall}

// String renders the activity name used in labels and service responses.
func (a Activity) String() string {
	switch a {
	case Idle:
		return "idle"
	case Squat:
		return "squat"
	case JumpingJack:
		return "jumping_jack"
	case OverheadPress:
		return "overhead_press"
	case Lunge:
		return "lunge"
	case Wave:
		return "wave"
	case Clap:
		return "clap"
	case Fall:
		return "fall"
	default:
		return fmt.Sprintf("Activity(%d)", int(a))
	}
}

// ParseActivity inverts String.
func ParseActivity(s string) (Activity, error) {
	for _, a := range AllActivities {
		if a.String() == s {
			return a, nil
		}
	}
	return 0, fmt.Errorf("vision: unknown activity %q", s)
}

// Subject parameterizes the synthetic human: where they stand, how large
// they appear, and how noisy the keypoints are. The paper notes its high
// recognition accuracy comes from a standardized viewing distance and
// angle; Subject models per-user variation around that standard setup.
type Subject struct {
	// CenterX, CenterY locate the hip center at rest, in pixels.
	CenterX, CenterY float64
	// Scale is the torso length in pixels (shoulder line to hip line).
	Scale float64
	// Noise is the per-keypoint Gaussian jitter in pixels.
	Noise float64
	// Phase0 offsets the rep cycle start.
	Phase0 float64
}

// DefaultSubject matches the paper's standardized setup: centered in a
// 640x480 frame at a fixed distance.
func DefaultSubject() Subject {
	return Subject{CenterX: 320, CenterY: 260, Scale: 80, Noise: 1.5}
}

// SynthesizePose produces the pose for an activity at rep-cycle phase
// p ∈ [0, 1). For Fall, p is progress through the (non-cyclic) fall.
func SynthesizePose(a Activity, p float64, s Subject, rng *rand.Rand) Pose {
	p = p - math.Floor(p)
	sk := restSkeleton(s)
	c := 0.5 * (1 - math.Cos(2*math.Pi*p)) // smooth 0→1→0 over the cycle

	switch a {
	case Idle:
		// Subtle sway only.
		sk.leanX = 0.02 * s.Scale * math.Sin(2*math.Pi*p)
	case Squat:
		drop := 0.55 * s.Scale * c
		sk.hipY += drop
		sk.kneeSpread += 0.25 * s.Scale * c
		sk.ankleY = sk.restAnkleY // feet planted
		// Arms extend forward (to the side in 2D) for balance.
		sk.armAngleL = lerp(armDown, math.Pi/2.1, c)
		sk.armAngleR = lerp(armDown, math.Pi/2.1, c)
	case JumpingJack:
		// Arms sweep from down to overhead, legs spread.
		sk.armAngleL = lerp(armDown, armUp, c)
		sk.armAngleR = lerp(armDown, armUp, c)
		sk.legSpread = 0.45 * s.Scale * c
		sk.hipY -= 0.08 * s.Scale * c // slight airborne rise
	case OverheadPress:
		// Wrists from shoulders to overhead; elbows track.
		sk.armAngleL = lerp(math.Pi/2, armUp, c)
		sk.armAngleR = lerp(math.Pi/2, armUp, c)
		sk.armBend = lerp(0.9, 0.05, c)
	case Lunge:
		sk.hipY += 0.35 * s.Scale * c
		sk.legForward = 0.5 * s.Scale * c // one leg steps forward (to +x)
		sk.armAngleL = armDown
		sk.armAngleR = armDown
	case Wave:
		// Right arm up, forearm oscillating; multiple oscillations per cycle.
		sk.armAngleR = armUp - 0.15
		sk.wristSwingR = 0.35 * s.Scale * math.Sin(2*math.Pi*3*p)
		sk.armAngleL = armDown
	case Clap:
		// Both wrists meet at chest level and part.
		sk.armAngleL = math.Pi / 2.4
		sk.armAngleR = math.Pi / 2.4
		sk.clapClose = c
	case Fall:
		// Torso rotates to horizontal and body lowers; non-cyclic.
		fall := math.Min(p*1.2, 1)
		sk.torsoTilt = fall * math.Pi / 2 * 0.95
		sk.hipY += 0.9 * s.Scale * fall
	}

	pose := sk.forward(s)
	if s.Noise > 0 && rng != nil {
		for i := range pose.Keypoints {
			pose.Keypoints[i].X += rng.NormFloat64() * s.Noise
			pose.Keypoints[i].Y += rng.NormFloat64() * s.Noise
		}
	}
	pose.Box = pose.BoundingBox(0.15 * s.Scale)
	pose.Score = 0.97
	return pose
}

// Arm angle conventions: measured at the shoulder from straight-down.
const (
	armDown = 0.25           // slightly away from the body
	armUp   = math.Pi - 0.15 // nearly straight overhead
)

// skeleton holds the articulated state before forward kinematics.
type skeleton struct {
	hipY        float64 // hip center vertical position (pixels)
	restAnkleY  float64
	ankleY      float64
	leanX       float64
	torsoTilt   float64 // radians from vertical
	kneeSpread  float64
	legSpread   float64
	legForward  float64
	armAngleL   float64
	armAngleR   float64
	armBend     float64 // 0 = straight, 1 = fully bent elbow
	wristSwingR float64
	clapClose   float64 // 0 = apart, 1 = hands together
}

func restSkeleton(s Subject) skeleton {
	return skeleton{
		hipY:       s.CenterY,
		restAnkleY: s.CenterY + 1.7*s.Scale,
		ankleY:     s.CenterY + 1.7*s.Scale,
		armAngleL:  armDown,
		armAngleR:  armDown,
		armBend:    0.15,
	}
}

func lerp(a, b, t float64) float64 { return a + (b-a)*t }

// forward computes keypoint positions from the skeleton state.
func (sk skeleton) forward(s Subject) Pose {
	var p Pose
	hipW := 0.42 * s.Scale
	shW := 0.55 * s.Scale
	upperArm := 0.55 * s.Scale
	foreArm := 0.5 * s.Scale
	thigh := 0.85 * s.Scale
	shin := 0.8 * s.Scale
	headR := 0.22 * s.Scale

	hx := s.CenterX + sk.leanX
	hy := sk.hipY
	// Torso direction (unit vector pointing from hips toward shoulders).
	tux := math.Sin(sk.torsoTilt)
	tuy := -math.Cos(sk.torsoTilt)
	// Perpendicular (shoulder line direction).
	pux := -tuy
	puy := tux

	shCx := hx + tux*s.Scale
	shCy := hy + tuy*s.Scale

	p.Keypoints[LeftHip] = Point{X: hx - pux*hipW/2, Y: hy - puy*hipW/2}
	p.Keypoints[RightHip] = Point{X: hx + pux*hipW/2, Y: hy + puy*hipW/2}
	p.Keypoints[LeftShoulder] = Point{X: shCx - pux*shW/2, Y: shCy - puy*shW/2}
	p.Keypoints[RightShoulder] = Point{X: shCx + pux*shW/2, Y: shCy + puy*shW/2}

	// Head.
	noseX := shCx + tux*headR*2.2
	noseY := shCy + tuy*headR*2.2
	p.Keypoints[Nose] = Point{X: noseX, Y: noseY}
	p.Keypoints[LeftEye] = Point{X: noseX - pux*headR*0.4, Y: noseY + tuy*headR*0.3}
	p.Keypoints[RightEye] = Point{X: noseX + pux*headR*0.4, Y: noseY + tuy*headR*0.3}
	p.Keypoints[LeftEar] = Point{X: noseX - pux*headR*0.9, Y: noseY + tuy*headR*0.1}
	p.Keypoints[RightEar] = Point{X: noseX + pux*headR*0.9, Y: noseY + tuy*headR*0.1}

	// Arms. Shoulder angle measured from "straight down along the torso".
	arm := func(shoulder Point, angle float64, side float64, bend float64, wristSwing float64, clap float64) (Point, Point) {
		// Rotate the down-the-torso direction by angle, outward per side.
		dx := -tux*math.Cos(angle) + pux*side*math.Sin(angle)
		dy := -tuy*math.Cos(angle) + puy*side*math.Sin(angle)
		elbow := Point{X: shoulder.X + dx*upperArm, Y: shoulder.Y + dy*upperArm}
		// Forearm continues, bent toward the torso by bend.
		fx := dx*(1-bend) + tux*bend
		fy := dy*(1-bend) + tuy*bend
		norm := math.Hypot(fx, fy)
		if norm < 1e-9 {
			norm = 1
		}
		wrist := Point{X: elbow.X + fx/norm*foreArm + wristSwing, Y: elbow.Y + fy/norm*foreArm}
		if clap > 0 {
			// Pull the wrist toward the chest midline.
			chest := Point{X: shCx + tux*0.3*s.Scale, Y: shCy + tuy*0.3*s.Scale}
			wrist.X = lerp(wrist.X, chest.X, clap)
			wrist.Y = lerp(wrist.Y, chest.Y, clap)
		}
		return elbow, wrist
	}
	le, lw := arm(p.Keypoints[LeftShoulder], sk.armAngleL, -1, sk.armBend, 0, sk.clapClose)
	re, rw := arm(p.Keypoints[RightShoulder], sk.armAngleR, 1, sk.armBend, sk.wristSwingR, sk.clapClose)
	p.Keypoints[LeftElbow], p.Keypoints[LeftWrist] = le, lw
	p.Keypoints[RightElbow], p.Keypoints[RightWrist] = re, rw

	// Legs: ankles anchored near the ground; knees between hip and ankle,
	// bulging outward when bent.
	legLen := thigh + shin
	leg := func(hip Point, side float64, forward float64) (Point, Point) {
		ankle := Point{
			X: hip.X + side*sk.legSpread + forward,
			Y: math.Min(sk.ankleY, hip.Y+legLen),
		}
		midX := (hip.X + ankle.X) / 2
		midY := (hip.Y + ankle.Y) / 2
		// Knee bulge grows as hip-to-ankle distance shrinks below leg length.
		d := hip.Dist(ankle)
		bend := math.Sqrt(math.Max(legLen*legLen-d*d, 0)) / 2
		knee := Point{X: midX + side*(bend+sk.kneeSpread), Y: midY}
		return knee, ankle
	}
	lk, la := leg(p.Keypoints[LeftHip], -1, 0)
	rk, ra := leg(p.Keypoints[RightHip], 1, sk.legForward)
	p.Keypoints[LeftKnee], p.Keypoints[LeftAnkle] = lk, la
	p.Keypoints[RightKnee], p.Keypoints[RightAnkle] = rk, ra

	return p
}

// SynthesizeSequence generates n consecutive poses of an activity sampled
// at fps with the given rep rate (reps per second). The returned phases
// slice reports each frame's cycle phase, useful for ground-truth rep
// counting.
func SynthesizeSequence(a Activity, n int, fps, repRate float64, s Subject, rng *rand.Rand) ([]Pose, []float64) {
	poses := make([]Pose, n)
	phases := make([]float64, n)
	for i := 0; i < n; i++ {
		t := float64(i) / fps
		p := s.Phase0 + t*repRate
		if a == Fall {
			p = math.Min(t*repRate, 0.999) // non-cyclic
		}
		poses[i] = SynthesizePose(a, p-math.Floor(p), s, rng)
		phases[i] = p
	}
	return poses, phases
}
