package wire

import (
	"bytes"
	"testing"
)

// assertAllocs pins a steady-state allocation count. Under -race the
// bound is logged, not enforced (instrumentation skews the counts), but
// the loops still run so races are caught.
func assertAllocs(t *testing.T, what string, got, want float64) {
	t.Helper()
	if raceEnabled {
		t.Logf("%s: %.1f allocs/op (bound %.0f not enforced under -race)", what, got, want)
		return
	}
	if got > want {
		t.Errorf("%s: %.1f allocs/op, want <= %.0f", what, got, want)
	}
}

func TestMessageRoundTripAllocs(t *testing.T) {
	m := StringMessage("service", `{"x":1}`, "0123456789abcdef0123456789abcdef")

	// Steady-state encode into a reused scratch buffer is copy-only.
	var scratch []byte
	encode := testing.AllocsPerRun(200, func() {
		var err error
		scratch, err = m.EncodeTo(scratch[:0])
		if err != nil {
			t.Fatal(err)
		}
	})
	assertAllocs(t, "EncodeTo into scratch", encode, 0)

	// A full round trip adds the receiver's owned message: one body
	// buffer, one parts slice (part payloads borrow the body buffer).
	rd := bytes.NewReader(nil)
	roundTrip := testing.AllocsPerRun(200, func() {
		scratch, _ = m.EncodeTo(scratch[:0])
		rd.Reset(scratch)
		got, err := ReadMessage(rd)
		if err != nil {
			t.Fatal(err)
		}
		if got.Len() != m.Len() {
			t.Fatalf("round trip lost parts: %d != %d", got.Len(), m.Len())
		}
	})
	assertAllocs(t, "EncodeTo+ReadMessage round trip", roundTrip, 4)
}
