package wire

// PartBuilder assembles many message parts inside one contiguous backing
// buffer — the encode path for multi-frame batch messages, where paying
// one buffer (and one later EncodeTo copy source) per batch beats one
// allocation per frame. Append the payloads in order, then call Parts to
// slice them out; the builder records offsets rather than subslices, so
// the backing array may reallocate freely while parts are appended.
//
// A PartBuilder is not safe for concurrent use. Reset (optionally
// adopting a recycled buffer) makes it reusable across batches.
type PartBuilder struct {
	buf  []byte
	ends []int
}

// Reset clears the builder and adopts buf (which may be nil) as the
// backing buffer, truncated to zero length but keeping its capacity —
// the recycling hook for sync.Pool scratch.
func (b *PartBuilder) Reset(buf []byte) {
	b.buf = buf[:0]
	b.ends = b.ends[:0]
}

// Append copies p into the backing buffer as the next part. Empty parts
// are legal and round-trip as empty.
func (b *PartBuilder) Append(p []byte) {
	b.buf = append(b.buf, p...)
	b.ends = append(b.ends, len(b.buf))
}

// AppendWith grows the backing buffer through fn, which must append its
// payload to dst and return the extended slice (the frame.AppendEncode
// contract). On error the buffer is rewound and no part is recorded.
func (b *PartBuilder) AppendWith(fn func(dst []byte) ([]byte, error)) error {
	mark := len(b.buf)
	grown, err := fn(b.buf)
	if err != nil {
		b.buf = b.buf[:mark]
		return err
	}
	b.buf = grown
	b.ends = append(b.ends, len(b.buf))
	return nil
}

// Len reports the number of parts appended so far.
func (b *PartBuilder) Len() int { return len(b.ends) }

// Parts slices the appended parts out of the backing buffer. The parts
// alias the buffer: they stay valid until the next Reset, and the buffer
// must not be recycled while a Message still references them.
func (b *PartBuilder) Parts() [][]byte {
	out := make([][]byte, len(b.ends))
	start := 0
	for i, end := range b.ends {
		out[i] = b.buf[start:end:end]
		start = end
	}
	return out
}

// Buf exposes the backing buffer, for returning it to a pool once the
// parts are no longer referenced.
func (b *PartBuilder) Buf() []byte { return b.buf }
