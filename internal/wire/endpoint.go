package wire

import (
	"fmt"
	"strconv"
	"strings"
)

// EndpointMode distinguishes the two sides of an endpoint declaration.
type EndpointMode int

// Endpoint modes. Enums start at one so the zero value is invalid and
// detectable.
const (
	// Bind listens at the endpoint address.
	Bind EndpointMode = iota + 1
	// Connect dials the endpoint address.
	Connect
)

// String renders the mode in the Listing-1 config grammar.
func (m EndpointMode) String() string {
	switch m {
	case Bind:
		return "bind"
	case Connect:
		return "connect"
	default:
		return fmt.Sprintf("EndpointMode(%d)", int(m))
	}
}

// Endpoint is a parsed endpoint declaration from a pipeline configuration,
// e.g. "bind#tcp://*:5861" or "connect#tcp://desktop:5861" (the grammar from
// the paper's Listing 1).
type Endpoint struct {
	// Mode says whether this side binds or connects.
	Mode EndpointMode
	// Proto is the transport protocol; only "tcp" is currently defined.
	Proto string
	// Host is the peer or interface name. "*" means all local interfaces
	// and is valid only with Bind.
	Host string
	// Port is the TCP port.
	Port int
}

// ParseEndpoint parses the "mode#proto://host:port" endpoint grammar.
func ParseEndpoint(s string) (Endpoint, error) {
	modeStr, rest, ok := strings.Cut(s, "#")
	if !ok {
		return Endpoint{}, fmt.Errorf("wire: endpoint %q: missing '#' separator", s)
	}
	var mode EndpointMode
	switch modeStr {
	case "bind":
		mode = Bind
	case "connect":
		mode = Connect
	default:
		return Endpoint{}, fmt.Errorf("wire: endpoint %q: unknown mode %q", s, modeStr)
	}

	proto, addr, ok := strings.Cut(rest, "://")
	if !ok {
		return Endpoint{}, fmt.Errorf("wire: endpoint %q: missing '://'", s)
	}
	if proto != "tcp" {
		return Endpoint{}, fmt.Errorf("wire: endpoint %q: unsupported protocol %q", s, proto)
	}

	hostStr, portStr, ok := cutLast(addr, ":")
	if !ok {
		return Endpoint{}, fmt.Errorf("wire: endpoint %q: missing port", s)
	}
	port, err := strconv.Atoi(portStr)
	if err != nil || port < 0 || port > 65535 {
		return Endpoint{}, fmt.Errorf("wire: endpoint %q: invalid port %q", s, portStr)
	}
	if hostStr == "" {
		return Endpoint{}, fmt.Errorf("wire: endpoint %q: empty host", s)
	}
	if hostStr == "*" && mode != Bind {
		return Endpoint{}, fmt.Errorf("wire: endpoint %q: wildcard host requires bind mode", s)
	}

	return Endpoint{Mode: mode, Proto: proto, Host: hostStr, Port: port}, nil
}

// cutLast splits s at the final occurrence of sep.
func cutLast(s, sep string) (before, after string, found bool) {
	i := strings.LastIndex(s, sep)
	if i < 0 {
		return s, "", false
	}
	return s[:i], s[i+len(sep):], true
}

// String renders the endpoint back in config grammar.
func (e Endpoint) String() string {
	return fmt.Sprintf("%s#%s://%s:%d", e.Mode, e.Proto, e.Host, e.Port)
}

// Address reports the host:port dial/listen address. For a wildcard bind the
// host part is empty.
func (e Endpoint) Address() string {
	host := e.Host
	if host == "*" {
		host = ""
	}
	return host + ":" + strconv.Itoa(e.Port)
}
