package wire

import (
	"context"
	"fmt"
)

// Health-ping protocol: the supervisor's device-liveness probe. A probe is
// a one-part "ping" request over the RPC layer; a healthy host answers
// "pong". The responder-side gate lets the host model real failure
// semantics — a paused (hung) device blocks the reply until its probe
// deadline expires, so liveness is judged by the same path application
// traffic takes rather than by a bypassing side channel.
const (
	healthPing = "ping"
	healthPong = "pong"
)

// HealthGate is consulted before every health reply. Returning an error
// fails the probe; blocking (until ctx ends) models a hung host that
// accepts connections but never answers.
type HealthGate func(ctx context.Context) error

// ListenHealth binds a liveness responder at port (0 = ephemeral). gate
// may be nil for hosts that are always ready.
func ListenHealth(t Transport, port int, gate HealthGate) (*Responder, error) {
	return ListenResponder(t, port, func(ctx context.Context, req Message) (Message, error) {
		if req.Len() < 1 || req.StringPart(0) != healthPing {
			return Message{}, fmt.Errorf("wire: health: unexpected probe %q", req.StringPart(0))
		}
		if gate != nil {
			if err := gate(ctx); err != nil {
				return Message{}, err
			}
		}
		return NewMessage([]byte(healthPong)), nil
	})
}

// Ping sends one liveness probe through the caller and verifies the reply.
// The caller's own deadline and retry budget bound the probe; supervisors
// use a short timeout and a budget of one so a dead host costs exactly one
// probe interval.
func Ping(ctx context.Context, c *Caller) error {
	resp, err := c.Call(ctx, NewMessage([]byte(healthPing)))
	if err != nil {
		return err
	}
	if resp.Len() < 1 || resp.StringPart(0) != healthPong {
		return fmt.Errorf("wire: health: unexpected reply %q", resp.StringPart(0))
	}
	return nil
}
