package wire

import (
	"context"
	"errors"
	"testing"
	"time"
)

func TestHealthPingHealthyHost(t *testing.T) {
	nw := testNet()
	resp, err := ListenHealth(nw.Host("tv"), 0, nil)
	if err != nil {
		t.Fatalf("ListenHealth: %v", err)
	}
	defer resp.Close()

	c := DialCaller(nw.Host("supervisor"), resp.Addr().String())
	defer c.Close()
	c.SetCallTimeout(time.Second)
	c.SetRetryBudget(1)

	for i := 0; i < 3; i++ {
		if err := Ping(context.Background(), c); err != nil {
			t.Fatalf("Ping %d: %v", i, err)
		}
	}
}

func TestHealthPingGatedHostTimesOut(t *testing.T) {
	nw := testNet()
	// Gate blocks forever: a hung host that accepts connections but never
	// answers. The probe must fail on its own deadline.
	resp, err := ListenHealth(nw.Host("tv"), 0, func(ctx context.Context) error {
		<-ctx.Done()
		return ctx.Err()
	})
	if err != nil {
		t.Fatalf("ListenHealth: %v", err)
	}
	defer resp.Close()

	c := DialCaller(nw.Host("supervisor"), resp.Addr().String())
	defer c.Close()
	c.SetCallTimeout(100 * time.Millisecond)
	c.SetRetryBudget(1)

	start := time.Now()
	err = Ping(context.Background(), c)
	if err == nil {
		t.Fatal("Ping against a hung host succeeded")
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("Ping error = %v, want deadline exceeded", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Errorf("probe took %v, should fail on its 100ms deadline", elapsed)
	}
}

func TestHealthPingGateErrorFailsProbe(t *testing.T) {
	nw := testNet()
	gateErr := errors.New("host shutting down")
	resp, err := ListenHealth(nw.Host("tv"), 0, func(context.Context) error { return gateErr })
	if err != nil {
		t.Fatalf("ListenHealth: %v", err)
	}
	defer resp.Close()

	c := DialCaller(nw.Host("supervisor"), resp.Addr().String())
	defer c.Close()
	c.SetCallTimeout(time.Second)
	c.SetRetryBudget(1)

	err = Ping(context.Background(), c)
	var remote *RemoteError
	if !errors.As(err, &remote) {
		t.Fatalf("Ping error = %v, want *RemoteError from the gate", err)
	}
}

func TestHealthPingUnreachableHostFailsFast(t *testing.T) {
	nw := testNet()
	resp, err := ListenHealth(nw.Host("tv"), 0, nil)
	if err != nil {
		t.Fatalf("ListenHealth: %v", err)
	}
	defer resp.Close()

	nw.Partition("supervisor", "tv")
	c := DialCaller(nw.Host("supervisor"), resp.Addr().String())
	defer c.Close()
	c.SetCallTimeout(200 * time.Millisecond)
	c.SetRetryBudget(1)

	if err := Ping(context.Background(), c); err == nil {
		t.Fatal("Ping across a partition succeeded")
	}
}
