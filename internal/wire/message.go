// Package wire is VideoPipe's messaging layer, a from-scratch substitute for
// ZeroMQ built on the standard library.
//
// It provides brokerless, asynchronous, multipart message transfer between
// pipeline components, replicating the ZeroMQ facilities the paper relies on
// (§3.2): endpoint strings in the Listing-1 grammar ("bind#tcp://*:5861",
// "connect#tcp://desktop:5861"), length-prefixed multipart framing, PUSH/PULL
// one-way sockets for the module data path, and a multiplexed caller/responder
// pair (DEALER/ROUTER-style) for service calls. Sockets reconnect
// automatically and carry no broker hop — the paper's argument against
// Kafka/RabbitMQ-style brokers is that the extra forwarding hop adds delay.
//
// The layer is transport-agnostic: it runs over real TCP or over the
// netsim package's shaped in-memory fabric via the Transport interface.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"sync/atomic"
)

// bytesCopied counts payload bytes the wire layer copies (encode and
// Clone). With scratch-buffer encoding and borrow-not-clone delivery the
// steady state is exactly one copy per message — into the socket write
// buffer — so this counter growing faster than the send rate times message
// size flags a copy regression. Surfaced by vpbench as wire.bytes_copied.
var bytesCopied atomic.Uint64

// BytesCopied reports the cumulative wire.bytes_copied counter.
func BytesCopied() uint64 { return bytesCopied.Load() }

// MaxMessageSize bounds a single encoded message, protecting receivers from
// hostile or corrupt length prefixes. Video frames at home resolutions fit
// comfortably.
const MaxMessageSize = 64 << 20

// Message is a multipart message, the unit of transfer. Parts are opaque
// byte slices; by convention the first part carries routing or type
// information and later parts carry payloads.
type Message struct {
	Parts [][]byte
}

// NewMessage builds a message from the given parts. The slices are used
// directly; callers must not mutate them after sending.
func NewMessage(parts ...[]byte) Message { return Message{Parts: parts} }

// StringMessage builds a message whose parts are the given strings.
func StringMessage(parts ...string) Message {
	m := Message{Parts: make([][]byte, len(parts))}
	for i, p := range parts {
		m.Parts[i] = []byte(p)
	}
	return m
}

// Part returns part i, or nil when out of range.
func (m Message) Part(i int) []byte {
	if i < 0 || i >= len(m.Parts) {
		return nil
	}
	return m.Parts[i]
}

// StringPart returns part i as a string, or "" when out of range.
func (m Message) StringPart(i int) string { return string(m.Part(i)) }

// Len reports the number of parts.
func (m Message) Len() int { return len(m.Parts) }

// Size reports the total payload bytes across all parts.
func (m Message) Size() int {
	n := 0
	for _, p := range m.Parts {
		n += len(p)
	}
	return n
}

// Clone deep-copies the message so the original buffers can be reused.
// Hot paths should prefer borrowing (see Pull.Recv and the RPC handoffs) —
// Clone exists for consumers that must outlive the producer's buffer.
func (m Message) Clone() Message {
	out := Message{Parts: make([][]byte, len(m.Parts))}
	for i, p := range m.Parts {
		c := make([]byte, len(p))
		copy(c, p)
		out.Parts[i] = c
	}
	bytesCopied.Add(uint64(m.Size()))
	return out
}

// errMessageTooLarge reports an encoded message exceeding MaxMessageSize.
var errMessageTooLarge = errors.New("wire: message exceeds size limit")

// encodedSize reports the on-wire size of the message body (excluding the
// 4-byte outer length prefix).
func (m Message) encodedSize() int {
	n := uvarintLen(uint64(len(m.Parts)))
	for _, p := range m.Parts {
		n += uvarintLen(uint64(len(p))) + len(p)
	}
	return n
}

func uvarintLen(v uint64) int {
	n := 1
	for v >= 0x80 {
		v >>= 7
		n++
	}
	return n
}

// EncodeTo appends m's complete wire record to dst and returns the
// extended slice, reusing dst's capacity when it suffices:
//
//	[4-byte big-endian body length][uvarint part count]{[uvarint len][bytes]}*
//
// Sockets call it with a per-socket scratch buffer (under their write
// mutex), so steady-state sends encode with zero allocations.
func (m Message) EncodeTo(dst []byte) ([]byte, error) {
	body := m.encodedSize()
	if body > MaxMessageSize {
		return dst, errMessageTooLarge
	}
	if need := len(dst) + 4 + body; cap(dst) < need {
		grown := make([]byte, len(dst), need)
		copy(grown, dst)
		dst = grown
	}
	dst = binary.BigEndian.AppendUint32(dst, uint32(body))
	dst = binary.AppendUvarint(dst, uint64(len(m.Parts)))
	for _, p := range m.Parts {
		dst = binary.AppendUvarint(dst, uint64(len(p)))
		dst = append(dst, p...)
	}
	bytesCopied.Add(uint64(m.Size()))
	return dst, nil
}

// WriteMessage encodes m to w as a single length-prefixed record,
// allocating a fresh buffer. Hot paths use writeMessageBuf with a reusable
// scratch buffer instead.
func WriteMessage(w io.Writer, m Message) error {
	_, err := writeMessageBuf(w, m, nil)
	return err
}

// writeMessageBuf encodes m into scratch's spare capacity and writes the
// record as a single Write call. It returns the (possibly regrown) scratch
// for the next send; the caller must serialize calls per writer.
func writeMessageBuf(w io.Writer, m Message, scratch []byte) ([]byte, error) {
	buf, err := m.EncodeTo(scratch[:0])
	if err != nil {
		return scratch, err
	}
	if _, err := w.Write(buf); err != nil {
		return buf, fmt.Errorf("wire: write message: %w", err)
	}
	return buf, nil
}

// ReadMessage decodes one message from r.
func ReadMessage(r io.Reader) (Message, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if errors.Is(err, io.EOF) {
			return Message{}, io.EOF
		}
		return Message{}, fmt.Errorf("wire: read header: %w", err)
	}
	body := binary.BigEndian.Uint32(hdr[:])
	if body > MaxMessageSize {
		return Message{}, errMessageTooLarge
	}
	buf := make([]byte, body)
	if _, err := io.ReadFull(r, buf); err != nil {
		return Message{}, fmt.Errorf("wire: read body: %w", err)
	}
	return decodeBody(buf)
}

// decodeBody parses the parts out of one read buffer. Parts borrow
// subslices of buf rather than copying — the buffer is dedicated to this
// message, so the returned Message owns it and downstream consumers may
// hold the parts as long as they hold the message.
func decodeBody(buf []byte) (Message, error) {
	count, n := binary.Uvarint(buf)
	if n <= 0 {
		return Message{}, errors.New("wire: corrupt part count")
	}
	buf = buf[n:]
	if count > uint64(len(buf))+1 {
		return Message{}, errors.New("wire: implausible part count")
	}
	m := Message{Parts: make([][]byte, 0, count)}
	for i := uint64(0); i < count; i++ {
		plen, n := binary.Uvarint(buf)
		if n <= 0 {
			return Message{}, errors.New("wire: corrupt part length")
		}
		buf = buf[n:]
		if plen > uint64(len(buf)) {
			return Message{}, errors.New("wire: part overruns body")
		}
		m.Parts = append(m.Parts, buf[:plen:plen])
		buf = buf[plen:]
	}
	if len(buf) != 0 {
		return Message{}, errors.New("wire: trailing bytes after parts")
	}
	return m, nil
}
