// Package wire is VideoPipe's messaging layer, a from-scratch substitute for
// ZeroMQ built on the standard library.
//
// It provides brokerless, asynchronous, multipart message transfer between
// pipeline components, replicating the ZeroMQ facilities the paper relies on
// (§3.2): endpoint strings in the Listing-1 grammar ("bind#tcp://*:5861",
// "connect#tcp://desktop:5861"), length-prefixed multipart framing, PUSH/PULL
// one-way sockets for the module data path, and a multiplexed caller/responder
// pair (DEALER/ROUTER-style) for service calls. Sockets reconnect
// automatically and carry no broker hop — the paper's argument against
// Kafka/RabbitMQ-style brokers is that the extra forwarding hop adds delay.
//
// The layer is transport-agnostic: it runs over real TCP or over the
// netsim package's shaped in-memory fabric via the Transport interface.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// MaxMessageSize bounds a single encoded message, protecting receivers from
// hostile or corrupt length prefixes. Video frames at home resolutions fit
// comfortably.
const MaxMessageSize = 64 << 20

// Message is a multipart message, the unit of transfer. Parts are opaque
// byte slices; by convention the first part carries routing or type
// information and later parts carry payloads.
type Message struct {
	Parts [][]byte
}

// NewMessage builds a message from the given parts. The slices are used
// directly; callers must not mutate them after sending.
func NewMessage(parts ...[]byte) Message { return Message{Parts: parts} }

// StringMessage builds a message whose parts are the given strings.
func StringMessage(parts ...string) Message {
	m := Message{Parts: make([][]byte, len(parts))}
	for i, p := range parts {
		m.Parts[i] = []byte(p)
	}
	return m
}

// Part returns part i, or nil when out of range.
func (m Message) Part(i int) []byte {
	if i < 0 || i >= len(m.Parts) {
		return nil
	}
	return m.Parts[i]
}

// StringPart returns part i as a string, or "" when out of range.
func (m Message) StringPart(i int) string { return string(m.Part(i)) }

// Len reports the number of parts.
func (m Message) Len() int { return len(m.Parts) }

// Size reports the total payload bytes across all parts.
func (m Message) Size() int {
	n := 0
	for _, p := range m.Parts {
		n += len(p)
	}
	return n
}

// Clone deep-copies the message so the original buffers can be reused.
func (m Message) Clone() Message {
	out := Message{Parts: make([][]byte, len(m.Parts))}
	for i, p := range m.Parts {
		c := make([]byte, len(p))
		copy(c, p)
		out.Parts[i] = c
	}
	return out
}

// errMessageTooLarge reports an encoded message exceeding MaxMessageSize.
var errMessageTooLarge = errors.New("wire: message exceeds size limit")

// encodedSize reports the on-wire size of the message body (excluding the
// 4-byte outer length prefix).
func (m Message) encodedSize() int {
	n := uvarintLen(uint64(len(m.Parts)))
	for _, p := range m.Parts {
		n += uvarintLen(uint64(len(p))) + len(p)
	}
	return n
}

func uvarintLen(v uint64) int {
	n := 1
	for v >= 0x80 {
		v >>= 7
		n++
	}
	return n
}

// WriteMessage encodes m to w as a single length-prefixed record:
//
//	[4-byte big-endian body length][uvarint part count]{[uvarint len][bytes]}*
func WriteMessage(w io.Writer, m Message) error {
	body := m.encodedSize()
	if body > MaxMessageSize {
		return errMessageTooLarge
	}
	buf := make([]byte, 0, 4+body)
	buf = binary.BigEndian.AppendUint32(buf, uint32(body))
	buf = binary.AppendUvarint(buf, uint64(len(m.Parts)))
	for _, p := range m.Parts {
		buf = binary.AppendUvarint(buf, uint64(len(p)))
		buf = append(buf, p...)
	}
	_, err := w.Write(buf)
	if err != nil {
		return fmt.Errorf("wire: write message: %w", err)
	}
	return nil
}

// ReadMessage decodes one message from r.
func ReadMessage(r io.Reader) (Message, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if errors.Is(err, io.EOF) {
			return Message{}, io.EOF
		}
		return Message{}, fmt.Errorf("wire: read header: %w", err)
	}
	body := binary.BigEndian.Uint32(hdr[:])
	if body > MaxMessageSize {
		return Message{}, errMessageTooLarge
	}
	buf := make([]byte, body)
	if _, err := io.ReadFull(r, buf); err != nil {
		return Message{}, fmt.Errorf("wire: read body: %w", err)
	}
	return decodeBody(buf)
}

func decodeBody(buf []byte) (Message, error) {
	count, n := binary.Uvarint(buf)
	if n <= 0 {
		return Message{}, errors.New("wire: corrupt part count")
	}
	buf = buf[n:]
	if count > uint64(len(buf))+1 {
		return Message{}, errors.New("wire: implausible part count")
	}
	m := Message{Parts: make([][]byte, 0, count)}
	for i := uint64(0); i < count; i++ {
		plen, n := binary.Uvarint(buf)
		if n <= 0 {
			return Message{}, errors.New("wire: corrupt part length")
		}
		buf = buf[n:]
		if plen > uint64(len(buf)) {
			return Message{}, errors.New("wire: part overruns body")
		}
		m.Parts = append(m.Parts, buf[:plen:plen])
		buf = buf[plen:]
	}
	if len(buf) != 0 {
		return Message{}, errors.New("wire: trailing bytes after parts")
	}
	return m, nil
}
