package wire

import (
	"bytes"
	"io"
	"testing"
	"testing/quick"
)

func roundTrip(t *testing.T, m Message) Message {
	t.Helper()
	var buf bytes.Buffer
	if err := WriteMessage(&buf, m); err != nil {
		t.Fatalf("WriteMessage: %v", err)
	}
	got, err := ReadMessage(&buf)
	if err != nil {
		t.Fatalf("ReadMessage: %v", err)
	}
	return got
}

func messagesEqual(a, b Message) bool {
	if len(a.Parts) != len(b.Parts) {
		return false
	}
	for i := range a.Parts {
		if !bytes.Equal(a.Parts[i], b.Parts[i]) {
			return false
		}
	}
	return true
}

func TestMessageRoundTrip(t *testing.T) {
	cases := []Message{
		{},
		NewMessage(),
		NewMessage([]byte("a")),
		NewMessage([]byte("a"), []byte("bb"), []byte("ccc")),
		NewMessage(nil, []byte{}, []byte("x")),
		StringMessage("frame", "42", "payload"),
		NewMessage(bytes.Repeat([]byte{0xAB}, 100_000)),
	}
	for i, m := range cases {
		got := roundTrip(t, m)
		if !messagesEqual(got, m) {
			t.Errorf("case %d: round trip mismatch: got %d parts, want %d", i, got.Len(), m.Len())
		}
	}
}

func TestMessageRoundTripProperty(t *testing.T) {
	check := func(parts [][]byte) bool {
		m := Message{Parts: parts}
		var buf bytes.Buffer
		if err := WriteMessage(&buf, m); err != nil {
			return false
		}
		got, err := ReadMessage(&buf)
		if err != nil {
			return false
		}
		return messagesEqual(got, m)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestMessageAccessors(t *testing.T) {
	m := StringMessage("a", "b")
	if m.Len() != 2 {
		t.Errorf("Len() = %d, want 2", m.Len())
	}
	if m.Size() != 2 {
		t.Errorf("Size() = %d, want 2", m.Size())
	}
	if m.StringPart(0) != "a" || m.StringPart(1) != "b" {
		t.Errorf("StringPart mismatch: %q %q", m.StringPart(0), m.StringPart(1))
	}
	if m.Part(-1) != nil || m.Part(2) != nil {
		t.Error("out-of-range Part should be nil")
	}
	if m.StringPart(5) != "" {
		t.Error("out-of-range StringPart should be empty")
	}
}

func TestMessageClone(t *testing.T) {
	orig := NewMessage([]byte("mutable"))
	clone := orig.Clone()
	orig.Parts[0][0] = 'X'
	if clone.StringPart(0) != "mutable" {
		t.Errorf("clone affected by mutation: %q", clone.StringPart(0))
	}
}

func TestMessageTooLarge(t *testing.T) {
	m := NewMessage(make([]byte, MaxMessageSize+1))
	var buf bytes.Buffer
	if err := WriteMessage(&buf, m); err == nil {
		t.Error("WriteMessage accepted oversized message")
	}
}

func TestReadMessageRejectsHugeHeader(t *testing.T) {
	buf := []byte{0xFF, 0xFF, 0xFF, 0xFF}
	if _, err := ReadMessage(bytes.NewReader(buf)); err == nil {
		t.Error("ReadMessage accepted oversized length prefix")
	}
}

func TestReadMessageCorruptBodies(t *testing.T) {
	cases := [][]byte{
		{0, 0, 0, 1, 0x80},             // truncated uvarint part count
		{0, 0, 0, 2, 1, 0x80},          // truncated part length
		{0, 0, 0, 3, 1, 5, 'x'},        // part overruns body
		{0, 0, 0, 3, 1, 1, 'x'},        // exact: should pass — see below
		{0, 0, 0, 4, 1, 1, 'x', 'y'},   // trailing bytes
		{0, 0, 0, 5, 0xFF, 1, 2, 3, 4}, // implausible part count
	}
	for i, raw := range cases {
		_, err := ReadMessage(bytes.NewReader(raw))
		if i == 3 {
			if err != nil {
				t.Errorf("case %d: valid message rejected: %v", i, err)
			}
			continue
		}
		if err == nil {
			t.Errorf("case %d: corrupt message accepted", i)
		}
	}
}

func TestReadMessageEOF(t *testing.T) {
	if _, err := ReadMessage(bytes.NewReader(nil)); err != io.EOF {
		t.Errorf("ReadMessage(empty) = %v, want io.EOF", err)
	}
	// Partial header is an error but not clean EOF.
	if _, err := ReadMessage(bytes.NewReader([]byte{0, 0})); err == nil || err == io.EOF {
		t.Errorf("ReadMessage(partial header) = %v, want wrapped error", err)
	}
}

func TestMultipleMessagesOnStream(t *testing.T) {
	var buf bytes.Buffer
	for i := 0; i < 5; i++ {
		if err := WriteMessage(&buf, StringMessage("msg", string(rune('a'+i)))); err != nil {
			t.Fatalf("WriteMessage: %v", err)
		}
	}
	for i := 0; i < 5; i++ {
		m, err := ReadMessage(&buf)
		if err != nil {
			t.Fatalf("ReadMessage %d: %v", i, err)
		}
		if m.StringPart(1) != string(rune('a'+i)) {
			t.Errorf("message %d out of order: %q", i, m.StringPart(1))
		}
	}
	if _, err := ReadMessage(&buf); err != io.EOF {
		t.Errorf("after stream drained: %v, want io.EOF", err)
	}
}

func TestEndpointParseValid(t *testing.T) {
	cases := []struct {
		in   string
		want Endpoint
	}{
		{"bind#tcp://*:5861", Endpoint{Mode: Bind, Proto: "tcp", Host: "*", Port: 5861}},
		{"connect#tcp://desktop:5861", Endpoint{Mode: Connect, Proto: "tcp", Host: "desktop", Port: 5861}},
		{"bind#tcp://phone:0", Endpoint{Mode: Bind, Proto: "tcp", Host: "phone", Port: 0}},
	}
	for _, c := range cases {
		got, err := ParseEndpoint(c.in)
		if err != nil {
			t.Errorf("ParseEndpoint(%q): %v", c.in, err)
			continue
		}
		if got != c.want {
			t.Errorf("ParseEndpoint(%q) = %+v, want %+v", c.in, got, c.want)
		}
	}
}

func TestEndpointParseInvalid(t *testing.T) {
	cases := []string{
		"",
		"tcp://desktop:5861",          // missing mode
		"listen#tcp://desktop:5861",   // unknown mode
		"bind#udp://desktop:5861",     // unsupported proto
		"bind#tcp://desktop",          // missing port
		"bind#tcp://desktop:notaport", // bad port
		"bind#tcp://desktop:99999",    // port out of range
		"bind#tcp://:5861",            // empty host
		"connect#tcp://*:5861",        // wildcard needs bind
		"bind#tcpdesktop:5861",        // missing ://
	}
	for _, in := range cases {
		if _, err := ParseEndpoint(in); err == nil {
			t.Errorf("ParseEndpoint(%q) succeeded, want error", in)
		}
	}
}

func TestEndpointStringRoundTrip(t *testing.T) {
	for _, s := range []string{"bind#tcp://*:5861", "connect#tcp://desktop:1234"} {
		e, err := ParseEndpoint(s)
		if err != nil {
			t.Fatalf("ParseEndpoint(%q): %v", s, err)
		}
		if e.String() != s {
			t.Errorf("String() = %q, want %q", e.String(), s)
		}
	}
}

func TestEndpointAddress(t *testing.T) {
	e := Endpoint{Mode: Bind, Proto: "tcp", Host: "*", Port: 80}
	if got := e.Address(); got != ":80" {
		t.Errorf("wildcard Address() = %q, want :80", got)
	}
	e.Host = "tv"
	if got := e.Address(); got != "tv:80" {
		t.Errorf("Address() = %q, want tv:80", got)
	}
}
