package wire

import (
	"bytes"
	"context"
	"net"
	"sync"
)

// Pub/Sub completes the ZeroMQ socket patterns the paper's platform builds
// on: a Pub socket binds and broadcasts topic-tagged messages to every
// connected Sub; each Sub subscribes to topic prefixes and receives only
// matching messages. VideoPipe uses this for cluster telemetry fan-out
// (monitor reports); it follows ZeroMQ semantics — no broker, slow
// subscribers drop rather than exerting backpressure on the publisher, and
// subscribers joining late miss earlier messages.

// Pub is the broadcasting side.
type Pub struct {
	ln net.Listener

	mu     sync.Mutex
	subs   map[*pubSub]struct{}
	closed bool
}

// pubSub is one connected subscriber as seen by the publisher.
type pubSub struct {
	conn net.Conn
	out  chan Message
	done chan struct{}
}

// subscriberBuffer bounds undelivered messages per subscriber; overflow is
// dropped (ZeroMQ's high-water-mark behaviour).
const subscriberBuffer = 16

// ListenPub binds a publisher at port (0 = ephemeral).
func ListenPub(t Transport, port int) (*Pub, error) {
	ln, err := t.Listen(port)
	if err != nil {
		return nil, err
	}
	p := &Pub{ln: ln, subs: make(map[*pubSub]struct{})}
	go p.acceptLoop()
	return p, nil
}

// Addr reports the bound address.
func (p *Pub) Addr() net.Addr { return p.ln.Addr() }

func (p *Pub) acceptLoop() {
	for {
		conn, err := p.ln.Accept()
		if err != nil {
			return
		}
		s := &pubSub{conn: conn, out: make(chan Message, subscriberBuffer), done: make(chan struct{})}
		p.mu.Lock()
		if p.closed {
			p.mu.Unlock()
			conn.Close()
			return
		}
		p.subs[s] = struct{}{}
		p.mu.Unlock()
		go p.writeLoop(s)
	}
}

func (p *Pub) writeLoop(s *pubSub) {
	defer func() {
		s.conn.Close()
		p.mu.Lock()
		delete(p.subs, s)
		p.mu.Unlock()
	}()
	for {
		select {
		case m := <-s.out:
			if err := WriteMessage(s.conn, m); err != nil {
				return
			}
		case <-s.done:
			return
		}
	}
}

// Publish broadcasts a message under a topic. Subscribers whose buffers
// are full miss it (no backpressure on the publisher). Publishing on a
// closed socket returns ErrClosed.
func (p *Pub) Publish(topic string, m Message) error {
	framed := Message{Parts: append([][]byte{[]byte(topic)}, m.Parts...)}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return ErrClosed
	}
	for s := range p.subs {
		select {
		case s.out <- framed:
		default: // slow subscriber: drop
		}
	}
	return nil
}

// Subscribers reports the number of connected subscribers.
func (p *Pub) Subscribers() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.subs)
}

// Close stops the publisher and disconnects subscribers.
func (p *Pub) Close() error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil
	}
	p.closed = true
	for s := range p.subs {
		close(s.done)
	}
	p.subs = make(map[*pubSub]struct{})
	p.mu.Unlock()
	return p.ln.Close()
}

// Sub is the receiving side: it connects to a publisher and receives
// messages matching its topic-prefix subscriptions.
type Sub struct {
	conn  net.Conn
	msgs  chan Message
	done  chan struct{}
	close sync.Once

	mu     sync.Mutex
	topics [][]byte
}

// DialSub connects to a publisher and subscribes to the given topic
// prefixes. An empty topic list (or the empty topic "") receives
// everything.
func DialSub(t Transport, address string, topics ...string) (*Sub, error) {
	conn, err := t.Dial(address)
	if err != nil {
		return nil, err
	}
	s := &Sub{
		conn: conn,
		msgs: make(chan Message, subscriberBuffer),
		done: make(chan struct{}),
	}
	for _, topic := range topics {
		s.topics = append(s.topics, []byte(topic))
	}
	go s.readLoop()
	return s, nil
}

func (s *Sub) readLoop() {
	defer s.conn.Close()
	for {
		m, err := ReadMessage(s.conn)
		if err != nil {
			return
		}
		if m.Len() < 1 || !s.matches(m.Part(0)) {
			continue
		}
		select {
		case s.msgs <- m:
		case <-s.done:
			return
		default: // local consumer too slow: drop, like ZeroMQ
		}
	}
}

func (s *Sub) matches(topic []byte) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.topics) == 0 {
		return true
	}
	for _, prefix := range s.topics {
		if bytes.HasPrefix(topic, prefix) {
			return true
		}
	}
	return false
}

// Subscribe adds a topic prefix at runtime.
func (s *Sub) Subscribe(topic string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.topics = append(s.topics, []byte(topic))
}

// Recv returns the next matching message; its first part is the topic.
func (s *Sub) Recv(ctx context.Context) (Message, error) {
	select {
	case m := <-s.msgs:
		return m, nil
	case <-s.done:
		return Message{}, ErrClosed
	case <-ctx.Done():
		return Message{}, ctx.Err()
	}
}

// Close disconnects the subscriber.
func (s *Sub) Close() error {
	s.close.Do(func() {
		close(s.done)
		s.conn.Close()
	})
	return nil
}
