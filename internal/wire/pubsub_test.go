package wire

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"
)

// waitSubscribers blocks until the publisher sees n subscribers.
func waitSubscribers(t *testing.T, p *Pub, n int) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if p.Subscribers() >= n {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("publisher never saw %d subscribers", n)
}

func TestPubSubBasicDelivery(t *testing.T) {
	nw := testNet()
	pub, err := ListenPub(nw.Host("desktop"), 0)
	if err != nil {
		t.Fatalf("ListenPub: %v", err)
	}
	defer pub.Close()

	sub, err := DialSub(nw.Host("tv"), pub.Addr().String(), "telemetry")
	if err != nil {
		t.Fatalf("DialSub: %v", err)
	}
	defer sub.Close()
	waitSubscribers(t, pub, 1)

	if err := pub.Publish("telemetry", StringMessage("cpu", "42")); err != nil {
		t.Fatalf("Publish: %v", err)
	}
	m, err := sub.Recv(context.Background())
	if err != nil {
		t.Fatalf("Recv: %v", err)
	}
	if m.StringPart(0) != "telemetry" || m.StringPart(1) != "cpu" || m.StringPart(2) != "42" {
		t.Errorf("Recv = %v", m.Parts)
	}
}

func TestSubTopicFiltering(t *testing.T) {
	nw := testNet()
	pub, _ := ListenPub(nw.Host("desktop"), 0)
	defer pub.Close()
	sub, _ := DialSub(nw.Host("tv"), pub.Addr().String(), "alerts.")
	defer sub.Close()
	waitSubscribers(t, pub, 1)

	pub.Publish("metrics.cpu", StringMessage("ignored"))
	pub.Publish("alerts.fall", StringMessage("fall detected"))
	pub.Publish("metrics.mem", StringMessage("ignored too"))

	m, err := sub.Recv(context.Background())
	if err != nil {
		t.Fatalf("Recv: %v", err)
	}
	if m.StringPart(0) != "alerts.fall" {
		t.Errorf("filter leaked topic %q", m.StringPart(0))
	}
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if _, err := sub.Recv(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("non-matching topics delivered: %v", err)
	}
}

func TestSubEmptyTopicReceivesAll(t *testing.T) {
	nw := testNet()
	pub, _ := ListenPub(nw.Host("desktop"), 0)
	defer pub.Close()
	sub, _ := DialSub(nw.Host("tv"), pub.Addr().String())
	defer sub.Close()
	waitSubscribers(t, pub, 1)

	for i := 0; i < 3; i++ {
		pub.Publish(fmt.Sprintf("topic%d", i), StringMessage("x"))
	}
	for i := 0; i < 3; i++ {
		if _, err := sub.Recv(context.Background()); err != nil {
			t.Fatalf("Recv %d: %v", i, err)
		}
	}
}

func TestPubFanOutToMultipleSubscribers(t *testing.T) {
	nw := testNet()
	pub, _ := ListenPub(nw.Host("desktop"), 0)
	defer pub.Close()

	const n = 4
	subs := make([]*Sub, n)
	for i := range subs {
		s, err := DialSub(nw.Host(fmt.Sprintf("dev%d", i)), pub.Addr().String())
		if err != nil {
			t.Fatalf("DialSub %d: %v", i, err)
		}
		defer s.Close()
		subs[i] = s
	}
	waitSubscribers(t, pub, n)

	pub.Publish("t", StringMessage("broadcast"))
	for i, s := range subs {
		m, err := s.Recv(context.Background())
		if err != nil || m.StringPart(1) != "broadcast" {
			t.Errorf("subscriber %d: %v, %v", i, m.Parts, err)
		}
	}
}

func TestSubRuntimeSubscribe(t *testing.T) {
	nw := testNet()
	pub, _ := ListenPub(nw.Host("desktop"), 0)
	defer pub.Close()
	sub, _ := DialSub(nw.Host("tv"), pub.Addr().String(), "never-matches")
	defer sub.Close()
	waitSubscribers(t, pub, 1)

	sub.Subscribe("extra")
	pub.Publish("extra.topic", StringMessage("late subscription"))
	m, err := sub.Recv(context.Background())
	if err != nil || m.StringPart(0) != "extra.topic" {
		t.Errorf("runtime subscribe: %v, %v", m.Parts, err)
	}
}

func TestSlowSubscriberDropsInsteadOfBlocking(t *testing.T) {
	nw := testNet()
	pub, _ := ListenPub(nw.Host("desktop"), 0)
	defer pub.Close()
	sub, _ := DialSub(nw.Host("tv"), pub.Addr().String())
	defer sub.Close()
	waitSubscribers(t, pub, 1)

	// Flood far beyond the buffer without consuming; Publish must never
	// block.
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 500; i++ {
			pub.Publish("flood", StringMessage(fmt.Sprint(i)))
		}
	}()
	select {
	case <-done:
	case <-time.After(3 * time.Second):
		t.Fatal("Publish blocked on a slow subscriber")
	}
	// Some messages arrive; many were dropped. Drain what's there.
	got := 0
	for {
		ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
		_, err := sub.Recv(ctx)
		cancel()
		if err != nil {
			break
		}
		got++
	}
	if got == 0 {
		t.Error("slow subscriber received nothing at all")
	}
	if got >= 500 {
		t.Error("no drops despite unconsumed flood — backpressure leaked to publisher")
	}
}

func TestPublishAfterCloseFails(t *testing.T) {
	nw := testNet()
	pub, _ := ListenPub(nw.Host("desktop"), 0)
	pub.Close()
	if err := pub.Publish("t", StringMessage("x")); !errors.Is(err, ErrClosed) {
		t.Errorf("Publish after Close = %v, want ErrClosed", err)
	}
}

func TestSubRecvAfterClose(t *testing.T) {
	nw := testNet()
	pub, _ := ListenPub(nw.Host("desktop"), 0)
	defer pub.Close()
	sub, _ := DialSub(nw.Host("tv"), pub.Addr().String())
	sub.Close()
	if _, err := sub.Recv(context.Background()); !errors.Is(err, ErrClosed) {
		t.Errorf("Recv after Close = %v, want ErrClosed", err)
	}
}

func TestLateSubscriberMissesEarlierMessages(t *testing.T) {
	nw := testNet()
	pub, _ := ListenPub(nw.Host("desktop"), 0)
	defer pub.Close()

	pub.Publish("t", StringMessage("before"))

	sub, _ := DialSub(nw.Host("tv"), pub.Addr().String())
	defer sub.Close()
	waitSubscribers(t, pub, 1)
	pub.Publish("t", StringMessage("after"))

	m, err := sub.Recv(context.Background())
	if err != nil {
		t.Fatalf("Recv: %v", err)
	}
	if m.StringPart(1) != "after" {
		t.Errorf("late subscriber saw %q, want only post-join messages", m.StringPart(1))
	}
}
