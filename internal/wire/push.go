package wire

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"
)

// ErrClosed is returned by operations on a closed socket.
var ErrClosed = errors.New("wire: socket closed")

// reconnect backoff bounds shared by Push and Caller.
const (
	backoffMin = 2 * time.Millisecond
	backoffMax = 250 * time.Millisecond
)

// Push is a one-way sending socket, the PUSH half of the module data path.
// It lazily connects to its peer and transparently reconnects after
// failures. Send blocks until the message is handed to the transport,
// matching the paper's queue-free design: the pipeline's flow control, not
// socket buffering, decides when frames move.
type Push struct {
	transport Transport
	address   string

	mu     sync.Mutex
	conn   net.Conn
	closed bool

	// writeMu serializes encodes and writes; scratch is the per-socket
	// encode buffer it guards, reused across sends (copy elision: one
	// copy per message, into this buffer).
	writeMu sync.Mutex
	scratch []byte
}

// DialPush creates a push socket that will connect to address on first use.
func DialPush(t Transport, address string) *Push {
	return &Push{transport: t, address: address}
}

// Send transfers one message, connecting or reconnecting as necessary and
// retrying with backoff until ctx is done.
func (p *Push) Send(ctx context.Context, m Message) error {
	backoff := backoffMin
	for {
		conn, err := p.ensureConn(ctx)
		if err == nil {
			p.writeMu.Lock()
			p.scratch, err = writeMessageBuf(conn, m, p.scratch)
			p.writeMu.Unlock()
			if err == nil {
				return nil
			}
			p.dropConn(conn)
		}
		if errors.Is(err, ErrClosed) {
			return err
		}
		select {
		case <-ctx.Done():
			return fmt.Errorf("wire: push to %s: %w (last error: %v)", p.address, ctx.Err(), err)
		case <-time.After(backoff):
		}
		if backoff *= 2; backoff > backoffMax {
			backoff = backoffMax
		}
	}
}

func (p *Push) ensureConn(ctx context.Context) (net.Conn, error) {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil, ErrClosed
	}
	if p.conn != nil {
		conn := p.conn
		p.mu.Unlock()
		return conn, nil
	}
	p.mu.Unlock()

	if err := ctx.Err(); err != nil {
		return nil, err
	}
	conn, err := p.transport.Dial(p.address)
	if err != nil {
		return nil, err
	}

	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		conn.Close()
		return nil, ErrClosed
	}
	if p.conn != nil {
		// Lost a connect race with another sender; use the winner.
		conn.Close()
		return p.conn, nil
	}
	p.conn = conn
	return conn, nil
}

func (p *Push) dropConn(conn net.Conn) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.conn == conn {
		p.conn = nil
	}
	conn.Close()
}

// Close shuts the socket down. Subsequent Sends fail with ErrClosed.
func (p *Push) Close() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return nil
	}
	p.closed = true
	if p.conn != nil {
		p.conn.Close()
		p.conn = nil
	}
	return nil
}

// Pull is the receiving half of the module data path. It binds a listener,
// accepts any number of upstream connections and fair-merges their messages
// into a single stream consumed by Recv.
type Pull struct {
	ln   net.Listener
	msgs chan Message
	done chan struct{}

	mu     sync.Mutex
	closed bool
}

// ListenPull binds a pull socket on the transport at port (0 = ephemeral).
func ListenPull(t Transport, port int) (*Pull, error) {
	ln, err := t.Listen(port)
	if err != nil {
		return nil, err
	}
	p := &Pull{
		ln: ln,
		// Size one, not more: the pipeline is queue-free by design; this
		// single slot only decouples the reader goroutine from Recv.
		msgs: make(chan Message, 1),
		done: make(chan struct{}),
	}
	go p.acceptLoop()
	return p, nil
}

func (p *Pull) acceptLoop() {
	for {
		conn, err := p.ln.Accept()
		if err != nil {
			return
		}
		go p.readLoop(conn)
	}
}

func (p *Pull) readLoop(conn net.Conn) {
	defer conn.Close()
	for {
		m, err := ReadMessage(conn)
		if err != nil {
			return
		}
		select {
		case p.msgs <- m:
		case <-p.done:
			return
		}
	}
}

// Recv returns the next message from any connected peer.
//
// Ownership: the message's parts borrow the single buffer ReadMessage
// allocated for it — no per-part copies were made, and the buffer is not
// reused for later messages. The receiver owns the message outright and
// may hold or mutate the parts indefinitely.
func (p *Pull) Recv(ctx context.Context) (Message, error) {
	select {
	case m := <-p.msgs:
		return m, nil
	case <-p.done:
		return Message{}, ErrClosed
	case <-ctx.Done():
		return Message{}, ctx.Err()
	}
}

// Addr reports the bound listener address.
func (p *Pull) Addr() net.Addr { return p.ln.Addr() }

// Close stops the socket and disconnects all peers.
func (p *Pull) Close() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return nil
	}
	p.closed = true
	close(p.done)
	return p.ln.Close()
}
