//go:build race

package wire

// raceEnabled reports that the race detector is active: allocation counts
// are skewed by instrumentation, so exact-count assertions are skipped
// (the code paths still run, so races in the scratch-buffer plumbing are
// caught).
const raceEnabled = true
