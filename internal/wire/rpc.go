package wire

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// RPC framing: a request is [8-byte id][application parts...]; a response is
// [8-byte id][1-byte status][application parts... | error string]. Requests
// from one Caller multiplex over a single connection, so a slow call does
// not block later calls — the responder handles each request in its own
// goroutine, which is what lets stateless services process frames from
// multiple pipelines concurrently.
const (
	statusOK  = 0
	statusErr = 1
)

// RemoteError is an application error returned by a responder's handler,
// carried back to the caller.
type RemoteError struct {
	// Msg is the handler's error text.
	Msg string
}

// Error satisfies the error interface.
func (e *RemoteError) Error() string { return "wire: remote error: " + e.Msg }

// Per-call resilience defaults. A mid-call link failure must surface as an
// error within the deadline rather than stranding the caller until the link
// heals; the retry budget bounds reconnect attempts so a dead peer fails
// fast instead of spinning on backoff.
const (
	// DefaultCallTimeout bounds one Call end to end, attempts included.
	DefaultCallTimeout = 10 * time.Second
	// DefaultRetryBudget is the maximum connection attempts per Call.
	DefaultRetryBudget = 8
)

// Caller is the requesting side of the service-call path. It multiplexes
// concurrent in-flight calls over one connection and reconnects after
// failures, bounded by a per-call deadline and retry budget.
type Caller struct {
	transport Transport
	address   string

	mu          sync.Mutex
	conn        net.Conn
	writeMu     sync.Mutex
	scratch     []byte // encode buffer guarded by writeMu, reused across calls
	pending     map[uint64]chan callResult
	nextID      uint64
	closed      bool
	callTimeout time.Duration
	retryBudget int

	timeouts atomic.Uint64
}

type callResult struct {
	msg Message
	err error
}

// DialCaller creates a caller that will connect to address on first use,
// with the default per-call deadline and retry budget.
func DialCaller(t Transport, address string) *Caller {
	return &Caller{
		transport:   t,
		address:     address,
		pending:     make(map[uint64]chan callResult),
		callTimeout: DefaultCallTimeout,
		retryBudget: DefaultRetryBudget,
	}
}

// Address reports the remote address this caller targets.
func (c *Caller) Address() string { return c.address }

// SetCallTimeout overrides the per-call deadline; d <= 0 disables it (the
// caller's context alone bounds the call).
func (c *Caller) SetCallTimeout(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.callTimeout = d
}

// SetRetryBudget overrides the per-call connection-attempt budget; n <= 0
// removes the bound (retries continue until the deadline).
func (c *Caller) SetRetryBudget(n int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.retryBudget = n
}

// Timeouts reports how many calls this caller has failed on deadline.
func (c *Caller) Timeouts() uint64 { return c.timeouts.Load() }

// Call sends req and waits for the matching response. Concurrent calls are
// multiplexed; connection failures are retried with backoff until the
// per-call deadline, the retry budget or ctx ends the call. A *RemoteError
// return means the remote handler itself failed; a deadline failure
// satisfies errors.Is(err, context.DeadlineExceeded).
func (c *Caller) Call(ctx context.Context, req Message) (Message, error) {
	c.mu.Lock()
	timeout := c.callTimeout
	budget := c.retryBudget
	c.mu.Unlock()
	if timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}

	backoff := backoffMin
	attempts := 0
	for {
		resp, err := c.tryCall(ctx, req)
		if err == nil {
			return resp, nil
		}
		var remote *RemoteError
		if errors.As(err, &remote) || errors.Is(err, ErrClosed) {
			return Message{}, err
		}
		if ctxErr := ctx.Err(); ctxErr != nil {
			return Message{}, c.deadlineErr(ctxErr, err)
		}
		attempts++
		if budget > 0 && attempts >= budget {
			return Message{}, fmt.Errorf("wire: call %s: retry budget exhausted after %d attempts: %w", c.address, attempts, err)
		}
		select {
		case <-ctx.Done():
			return Message{}, c.deadlineErr(ctx.Err(), err)
		case <-time.After(backoff):
		}
		if backoff *= 2; backoff > backoffMax {
			backoff = backoffMax
		}
	}
}

// deadlineErr wraps a context failure, counting expired deadlines.
func (c *Caller) deadlineErr(ctxErr, last error) error {
	if errors.Is(ctxErr, context.DeadlineExceeded) {
		c.timeouts.Add(1)
	}
	if errors.Is(last, ctxErr) {
		return fmt.Errorf("wire: call %s: %w", c.address, ctxErr)
	}
	return fmt.Errorf("wire: call %s: %w (last error: %v)", c.address, ctxErr, last)
}

func (c *Caller) tryCall(ctx context.Context, req Message) (Message, error) {
	conn, err := c.ensureConn(ctx)
	if err != nil {
		return Message{}, err
	}

	ch := make(chan callResult, 1)
	c.mu.Lock()
	c.nextID++
	id := c.nextID
	c.pending[id] = ch
	c.mu.Unlock()
	defer func() {
		c.mu.Lock()
		delete(c.pending, id)
		c.mu.Unlock()
	}()

	// The framed request borrows req's parts — they are copied exactly
	// once, into the scratch buffer, by the encode below.
	var idPart [8]byte
	binary.BigEndian.PutUint64(idPart[:], id)
	framed := Message{Parts: append([][]byte{idPart[:]}, req.Parts...)}

	c.writeMu.Lock()
	c.scratch, err = writeMessageBuf(conn, framed, c.scratch)
	c.writeMu.Unlock()
	if err != nil {
		c.dropConn(conn, err)
		return Message{}, err
	}

	select {
	case res := <-ch:
		return res.msg, res.err
	case <-ctx.Done():
		return Message{}, ctx.Err()
	}
}

func (c *Caller) ensureConn(ctx context.Context) (net.Conn, error) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, ErrClosed
	}
	if c.conn != nil {
		conn := c.conn
		c.mu.Unlock()
		return conn, nil
	}
	c.mu.Unlock()

	if err := ctx.Err(); err != nil {
		return nil, err
	}
	conn, err := c.transport.Dial(c.address)
	if err != nil {
		return nil, err
	}

	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		conn.Close()
		return nil, ErrClosed
	}
	if c.conn != nil {
		existing := c.conn
		c.mu.Unlock()
		conn.Close()
		return existing, nil
	}
	c.conn = conn
	c.mu.Unlock()

	go c.readLoop(conn)
	return conn, nil
}

func (c *Caller) readLoop(conn net.Conn) {
	for {
		m, err := ReadMessage(conn)
		if err != nil {
			c.dropConn(conn, err)
			return
		}
		if m.Len() < 2 || len(m.Part(0)) != 8 {
			c.dropConn(conn, errors.New("wire: malformed rpc response"))
			return
		}
		id := binary.BigEndian.Uint64(m.Part(0))
		res := callResult{}
		switch m.Part(1)[0] {
		case statusOK:
			// Borrow-not-clone: the response keeps m's parts (all
			// subslices of one read buffer dedicated to this message), so
			// delivery to the waiting call costs zero copies.
			res.msg = Message{Parts: m.Parts[2:]}
		case statusErr:
			res.err = &RemoteError{Msg: m.StringPart(2)}
		default:
			res.err = fmt.Errorf("wire: unknown rpc status %d", m.Part(1)[0])
		}
		c.mu.Lock()
		ch := c.pending[id]
		c.mu.Unlock()
		if ch != nil {
			ch <- res
		}
	}
}

// dropConn tears down a failed connection and fails every pending call so
// callers can retry on a fresh connection.
func (c *Caller) dropConn(conn net.Conn, cause error) {
	conn.Close()
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.conn != conn {
		return
	}
	c.conn = nil
	for id, ch := range c.pending {
		select {
		case ch <- callResult{err: fmt.Errorf("wire: connection lost: %w", cause)}:
		default:
		}
		delete(c.pending, id)
	}
}

// Close shuts the caller down, failing in-flight and future calls.
func (c *Caller) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	conn := c.conn
	c.conn = nil
	for id, ch := range c.pending {
		select {
		case ch <- callResult{err: ErrClosed}:
		default:
		}
		delete(c.pending, id)
	}
	c.mu.Unlock()
	if conn != nil {
		conn.Close()
	}
	return nil
}

// Handler processes one request message and returns the response payload.
// Handlers run concurrently; they must be safe for parallel use.
type Handler func(ctx context.Context, req Message) (Message, error)

// Responder is the serving side of the service-call path. Each accepted
// connection gets a read loop; each request runs in its own goroutine.
type Responder struct {
	ln      net.Listener
	handler Handler

	mu     sync.Mutex
	closed bool
	done   chan struct{}
	wg     sync.WaitGroup
}

// ListenResponder binds a responder at port (0 = ephemeral) serving handler.
func ListenResponder(t Transport, port int, handler Handler) (*Responder, error) {
	if handler == nil {
		return nil, errors.New("wire: nil handler")
	}
	ln, err := t.Listen(port)
	if err != nil {
		return nil, err
	}
	r := &Responder{ln: ln, handler: handler, done: make(chan struct{})}
	r.wg.Add(1)
	go r.acceptLoop()
	return r, nil
}

// Addr reports the bound listener address.
func (r *Responder) Addr() net.Addr { return r.ln.Addr() }

func (r *Responder) acceptLoop() {
	defer r.wg.Done()
	for {
		conn, err := r.ln.Accept()
		if err != nil {
			return
		}
		r.wg.Add(1)
		go r.serveConn(conn)
	}
}

func (r *Responder) serveConn(conn net.Conn) {
	defer r.wg.Done()
	defer conn.Close()
	// writeMu serializes response writes from concurrent handlers;
	// scratch is the per-connection encode buffer it guards.
	var writeMu sync.Mutex
	var scratch []byte
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go func() {
		<-r.done
		cancel()
		conn.Close()
	}()
	for {
		m, err := ReadMessage(conn)
		if err != nil {
			return
		}
		if m.Len() < 1 || len(m.Part(0)) != 8 {
			return
		}
		// Borrow-not-clone: the handler's request keeps m's parts (one
		// read buffer per message, never reused), so the handler may hold
		// them for the duration of the call without a defensive copy.
		id := m.Part(0)
		req := Message{Parts: m.Parts[1:]}
		r.wg.Add(1)
		go func() {
			defer r.wg.Done()
			resp, herr := r.handler(ctx, req)
			out := Message{Parts: make([][]byte, 0, 2+resp.Len())}
			out.Parts = append(out.Parts, id)
			if herr != nil {
				out.Parts = append(out.Parts, []byte{statusErr}, []byte(herr.Error()))
			} else {
				out.Parts = append(out.Parts, []byte{statusOK})
				out.Parts = append(out.Parts, resp.Parts...)
			}
			writeMu.Lock()
			defer writeMu.Unlock()
			// Best effort: a broken connection is detected by the read loop.
			scratch, _ = writeMessageBuf(conn, out, scratch)
		}()
	}
}

// Close stops the responder and waits for in-flight handlers to finish.
func (r *Responder) Close() error {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return nil
	}
	r.closed = true
	close(r.done)
	r.mu.Unlock()
	err := r.ln.Close()
	r.wg.Wait()
	return err
}
