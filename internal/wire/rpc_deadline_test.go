package wire

import (
	"context"
	"errors"
	"testing"
	"time"

	"videopipe/internal/netsim"
)

// slowResponder binds a responder on "desktop" whose handler blocks for d
// before echoing.
func slowResponder(t *testing.T, nw *netsim.Network, d time.Duration) *Responder {
	t.Helper()
	r, err := ListenResponder(nw.Host("desktop"), 0, func(ctx context.Context, req Message) (Message, error) {
		select {
		case <-time.After(d):
		case <-ctx.Done():
		}
		return req, nil
	})
	if err != nil {
		t.Fatalf("ListenResponder: %v", err)
	}
	t.Cleanup(func() { r.Close() })
	return r
}

// TestCallTimesOutDuringPartition is the headline resilience contract: a
// partition that opens mid-call must surface as a deadline error within the
// per-call timeout, not strand the caller until the link heals.
func TestCallTimesOutDuringPartition(t *testing.T) {
	nw := testNet()
	r := slowResponder(t, nw, time.Hour) // never answers in time
	c := DialCaller(nw.Host("phone"), r.Addr().String())
	defer c.Close()
	c.SetCallTimeout(300 * time.Millisecond)

	// Cut the link shortly after the call goes out.
	go func() {
		time.Sleep(50 * time.Millisecond)
		nw.Partition("phone", "desktop")
	}()
	defer nw.Heal("phone", "desktop")

	start := time.Now()
	_, err := c.Call(context.Background(), StringMessage("ping"))
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("Call succeeded across a partition")
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("Call error = %v, want DeadlineExceeded", err)
	}
	if elapsed > 2*time.Second {
		t.Errorf("Call blocked %v; the deadline should have fired at ~300ms", elapsed)
	}
	if got := c.Timeouts(); got != 1 {
		t.Errorf("Timeouts() = %d, want 1", got)
	}
}

// TestCallRetryBudgetBoundsDeadPeer verifies the caller stops redialing an
// unreachable address after the configured attempt budget instead of
// spinning until the deadline.
func TestCallRetryBudgetBoundsDeadPeer(t *testing.T) {
	nw := testNet()
	c := DialCaller(nw.Host("phone"), "desktop:49999") // nothing listens
	defer c.Close()
	c.SetCallTimeout(5 * time.Second)
	c.SetRetryBudget(3)

	start := time.Now()
	_, err := c.Call(context.Background(), StringMessage("ping"))
	if err == nil {
		t.Fatal("Call to dead peer succeeded")
	}
	if errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("budget exhaustion reported as deadline: %v", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Errorf("3-attempt budget took %v", elapsed)
	}
	if got := c.Timeouts(); got != 0 {
		t.Errorf("Timeouts() = %d, want 0", got)
	}
}

// TestCallDeadlineAppliesPerCall checks the timeout restarts for each call:
// a healthy caller completes many sequential calls each well under the
// deadline, and a timed-out caller recovers once the fault clears.
func TestCallDeadlineAppliesPerCall(t *testing.T) {
	nw := testNet()
	r := slowResponder(t, nw, 0)
	c := DialCaller(nw.Host("phone"), r.Addr().String())
	defer c.Close()
	c.SetCallTimeout(500 * time.Millisecond)

	for i := 0; i < 20; i++ {
		if _, err := c.Call(context.Background(), StringMessage("ping")); err != nil {
			t.Fatalf("call %d: %v", i, err)
		}
	}

	nw.Partition("phone", "desktop")
	if _, err := c.Call(context.Background(), StringMessage("ping")); err == nil {
		t.Fatal("call across partition succeeded")
	}
	nw.Heal("phone", "desktop")
	if _, err := c.Call(context.Background(), StringMessage("ping")); err != nil {
		t.Fatalf("call after heal: %v", err)
	}
}
