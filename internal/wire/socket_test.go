package wire

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"videopipe/internal/netsim"
)

func testNet() *netsim.Network {
	return netsim.NewNetwork(netsim.LinkProfile{})
}

func TestPushPullBasic(t *testing.T) {
	nw := testNet()
	pull, err := ListenPull(nw.Host("desktop"), 0)
	if err != nil {
		t.Fatalf("ListenPull: %v", err)
	}
	defer pull.Close()

	push := DialPush(nw.Host("phone"), pull.Addr().String())
	defer push.Close()

	ctx := context.Background()
	if err := push.Send(ctx, StringMessage("frame", "1")); err != nil {
		t.Fatalf("Send: %v", err)
	}
	m, err := pull.Recv(ctx)
	if err != nil {
		t.Fatalf("Recv: %v", err)
	}
	if m.StringPart(0) != "frame" || m.StringPart(1) != "1" {
		t.Errorf("Recv = %v, want [frame 1]", m)
	}
}

func TestPushPullManyMessagesInOrder(t *testing.T) {
	nw := testNet()
	pull, err := ListenPull(nw.Host("desktop"), 0)
	if err != nil {
		t.Fatalf("ListenPull: %v", err)
	}
	defer pull.Close()
	push := DialPush(nw.Host("phone"), pull.Addr().String())
	defer push.Close()

	ctx := context.Background()
	const n = 100
	go func() {
		for i := 0; i < n; i++ {
			if err := push.Send(ctx, StringMessage(fmt.Sprint(i))); err != nil {
				t.Errorf("Send %d: %v", i, err)
				return
			}
		}
	}()
	for i := 0; i < n; i++ {
		m, err := pull.Recv(ctx)
		if err != nil {
			t.Fatalf("Recv %d: %v", i, err)
		}
		if got := m.StringPart(0); got != fmt.Sprint(i) {
			t.Fatalf("message %d = %q, out of order", i, got)
		}
	}
}

func TestPushConnectsLazilyAndRetries(t *testing.T) {
	nw := testNet()
	// Push created before any listener exists.
	push := DialPush(nw.Host("phone"), "desktop:7001")
	defer push.Close()

	sent := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		sent <- push.Send(ctx, StringMessage("late"))
	}()

	time.Sleep(20 * time.Millisecond) // let a few dial attempts fail
	pull, err := ListenPull(nw.Host("desktop"), 7001)
	if err != nil {
		t.Fatalf("ListenPull: %v", err)
	}
	defer pull.Close()

	m, err := pull.Recv(context.Background())
	if err != nil {
		t.Fatalf("Recv: %v", err)
	}
	if m.StringPart(0) != "late" {
		t.Errorf("Recv = %q, want late", m.StringPart(0))
	}
	if err := <-sent; err != nil {
		t.Errorf("Send: %v", err)
	}
}

func TestPushSendAfterCloseFails(t *testing.T) {
	nw := testNet()
	push := DialPush(nw.Host("phone"), "desktop:1")
	push.Close()
	err := push.Send(context.Background(), StringMessage("x"))
	if !errors.Is(err, ErrClosed) {
		t.Errorf("Send after Close = %v, want ErrClosed", err)
	}
}

func TestPushSendContextCancelled(t *testing.T) {
	nw := testNet()
	push := DialPush(nw.Host("phone"), "desktop:9") // nothing listening
	defer push.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	if err := push.Send(ctx, StringMessage("x")); err == nil {
		t.Error("Send with no listener and expired ctx succeeded")
	}
}

func TestPullFairMergesMultiplePushers(t *testing.T) {
	nw := testNet()
	pull, err := ListenPull(nw.Host("desktop"), 0)
	if err != nil {
		t.Fatalf("ListenPull: %v", err)
	}
	defer pull.Close()

	ctx := context.Background()
	const senders, per = 4, 25
	for s := 0; s < senders; s++ {
		push := DialPush(nw.Host(fmt.Sprintf("device%d", s)), pull.Addr().String())
		defer push.Close()
		go func(s int, push *Push) {
			for i := 0; i < per; i++ {
				if err := push.Send(ctx, StringMessage(fmt.Sprint(s))); err != nil {
					t.Errorf("sender %d: %v", s, err)
					return
				}
			}
		}(s, push)
	}

	counts := map[string]int{}
	for i := 0; i < senders*per; i++ {
		m, err := pull.Recv(ctx)
		if err != nil {
			t.Fatalf("Recv: %v", err)
		}
		counts[m.StringPart(0)]++
	}
	for s := 0; s < senders; s++ {
		if got := counts[fmt.Sprint(s)]; got != per {
			t.Errorf("sender %d delivered %d messages, want %d", s, got, per)
		}
	}
}

func TestPullRecvAfterClose(t *testing.T) {
	nw := testNet()
	pull, err := ListenPull(nw.Host("desktop"), 0)
	if err != nil {
		t.Fatalf("ListenPull: %v", err)
	}
	pull.Close()
	if _, err := pull.Recv(context.Background()); !errors.Is(err, ErrClosed) {
		t.Errorf("Recv after Close = %v, want ErrClosed", err)
	}
}

func TestPullRecvContext(t *testing.T) {
	nw := testNet()
	pull, err := ListenPull(nw.Host("desktop"), 0)
	if err != nil {
		t.Fatalf("ListenPull: %v", err)
	}
	defer pull.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if _, err := pull.Recv(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("Recv = %v, want DeadlineExceeded", err)
	}
}

func TestCallerResponderBasic(t *testing.T) {
	nw := testNet()
	resp, err := ListenResponder(nw.Host("desktop"), 0, func(_ context.Context, req Message) (Message, error) {
		return StringMessage("echo:" + req.StringPart(0)), nil
	})
	if err != nil {
		t.Fatalf("ListenResponder: %v", err)
	}
	defer resp.Close()

	caller := DialCaller(nw.Host("phone"), resp.Addr().String())
	defer caller.Close()

	out, err := caller.Call(context.Background(), StringMessage("hi"))
	if err != nil {
		t.Fatalf("Call: %v", err)
	}
	if out.StringPart(0) != "echo:hi" {
		t.Errorf("Call = %q, want echo:hi", out.StringPart(0))
	}
}

func TestCallerRemoteError(t *testing.T) {
	nw := testNet()
	resp, err := ListenResponder(nw.Host("desktop"), 0, func(_ context.Context, _ Message) (Message, error) {
		return Message{}, errors.New("model exploded")
	})
	if err != nil {
		t.Fatalf("ListenResponder: %v", err)
	}
	defer resp.Close()

	caller := DialCaller(nw.Host("phone"), resp.Addr().String())
	defer caller.Close()

	_, err = caller.Call(context.Background(), StringMessage("x"))
	var remote *RemoteError
	if !errors.As(err, &remote) {
		t.Fatalf("Call error = %v, want RemoteError", err)
	}
	if remote.Msg != "model exploded" {
		t.Errorf("remote msg = %q", remote.Msg)
	}
}

func TestCallerConcurrentCallsMultiplex(t *testing.T) {
	nw := testNet()
	var inFlight, peak int64
	resp, err := ListenResponder(nw.Host("desktop"), 0, func(_ context.Context, req Message) (Message, error) {
		cur := atomic.AddInt64(&inFlight, 1)
		for {
			p := atomic.LoadInt64(&peak)
			if cur <= p || atomic.CompareAndSwapInt64(&peak, p, cur) {
				break
			}
		}
		time.Sleep(20 * time.Millisecond)
		atomic.AddInt64(&inFlight, -1)
		return req, nil
	})
	if err != nil {
		t.Fatalf("ListenResponder: %v", err)
	}
	defer resp.Close()

	caller := DialCaller(nw.Host("phone"), resp.Addr().String())
	defer caller.Close()

	var wg sync.WaitGroup
	start := time.Now()
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			out, err := caller.Call(context.Background(), StringMessage(fmt.Sprint(i)))
			if err != nil {
				t.Errorf("Call %d: %v", i, err)
				return
			}
			if out.StringPart(0) != fmt.Sprint(i) {
				t.Errorf("Call %d returned %q: responses crossed", i, out.StringPart(0))
			}
		}(i)
	}
	wg.Wait()
	elapsed := time.Since(start)
	if atomic.LoadInt64(&peak) < 2 {
		t.Errorf("peak concurrency = %d, want >= 2 (requests must multiplex)", peak)
	}
	if elapsed > 150*time.Millisecond {
		t.Errorf("8 concurrent 20ms calls took %v; requests appear serialized", elapsed)
	}
}

func TestCallerReconnectsAfterResponderRestart(t *testing.T) {
	nw := testNet()
	handler := func(_ context.Context, req Message) (Message, error) { return req, nil }
	resp, err := ListenResponder(nw.Host("desktop"), 7100, handler)
	if err != nil {
		t.Fatalf("ListenResponder: %v", err)
	}

	caller := DialCaller(nw.Host("phone"), "desktop:7100")
	defer caller.Close()
	if _, err := caller.Call(context.Background(), StringMessage("a")); err != nil {
		t.Fatalf("first Call: %v", err)
	}

	resp.Close()
	resp2, err := ListenResponder(nw.Host("desktop"), 7100, handler)
	if err != nil {
		t.Fatalf("restart ListenResponder: %v", err)
	}
	defer resp2.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	out, err := caller.Call(ctx, StringMessage("b"))
	if err != nil {
		t.Fatalf("Call after restart: %v", err)
	}
	if out.StringPart(0) != "b" {
		t.Errorf("Call after restart = %q, want b", out.StringPart(0))
	}
}

func TestCallerCloseFailsCalls(t *testing.T) {
	nw := testNet()
	caller := DialCaller(nw.Host("phone"), "desktop:1")
	caller.Close()
	if _, err := caller.Call(context.Background(), StringMessage("x")); !errors.Is(err, ErrClosed) {
		t.Errorf("Call after Close = %v, want ErrClosed", err)
	}
}

func TestResponderNilHandler(t *testing.T) {
	nw := testNet()
	if _, err := ListenResponder(nw.Host("desktop"), 0, nil); err == nil {
		t.Error("ListenResponder(nil) succeeded")
	}
}

func TestCallerResponderOverRealTCP(t *testing.T) {
	tp := TCPTransport{Interface: "127.0.0.1"}
	resp, err := ListenResponder(tp, 0, func(_ context.Context, req Message) (Message, error) {
		return StringMessage("tcp:" + req.StringPart(0)), nil
	})
	if err != nil {
		t.Skipf("real TCP unavailable: %v", err)
	}
	defer resp.Close()

	caller := DialCaller(TCPTransport{}, resp.Addr().String())
	defer caller.Close()
	out, err := caller.Call(context.Background(), StringMessage("ping"))
	if err != nil {
		t.Fatalf("Call over TCP: %v", err)
	}
	if out.StringPart(0) != "tcp:ping" {
		t.Errorf("Call = %q", out.StringPart(0))
	}
}

func TestPushPullOverRealTCP(t *testing.T) {
	tp := TCPTransport{Interface: "127.0.0.1"}
	pull, err := ListenPull(tp, 0)
	if err != nil {
		t.Skipf("real TCP unavailable: %v", err)
	}
	defer pull.Close()
	push := DialPush(TCPTransport{}, pull.Addr().String())
	defer push.Close()
	if err := push.Send(context.Background(), StringMessage("over-tcp")); err != nil {
		t.Fatalf("Send: %v", err)
	}
	m, err := pull.Recv(context.Background())
	if err != nil {
		t.Fatalf("Recv: %v", err)
	}
	if m.StringPart(0) != "over-tcp" {
		t.Errorf("Recv = %q", m.StringPart(0))
	}
}

func TestPushReconnectsAfterPullRestart(t *testing.T) {
	nw := testNet()
	pull, err := ListenPull(nw.Host("desktop"), 7200)
	if err != nil {
		t.Fatalf("ListenPull: %v", err)
	}
	push := DialPush(nw.Host("phone"), "desktop:7200")
	defer push.Close()

	ctx := context.Background()
	if err := push.Send(ctx, StringMessage("one")); err != nil {
		t.Fatalf("Send: %v", err)
	}
	if m, err := pull.Recv(ctx); err != nil || m.StringPart(0) != "one" {
		t.Fatalf("Recv: %v, %v", m.Parts, err)
	}

	// Restart the receiver: the push's connection dies; Send must
	// transparently reconnect (exercising dropConn).
	pull.Close()
	pull2, err := ListenPull(nw.Host("desktop"), 7200)
	if err != nil {
		t.Fatalf("restart ListenPull: %v", err)
	}
	defer pull2.Close()

	sendCtx, cancel := context.WithTimeout(ctx, 5*time.Second)
	defer cancel()
	// The first send may land on the dead conn (netsim buffers the write);
	// keep sending until one arrives at the new socket.
	got := make(chan Message, 1)
	go func() {
		m, err := pull2.Recv(sendCtx)
		if err == nil {
			got <- m
		}
	}()
	for i := 0; ; i++ {
		if err := push.Send(sendCtx, StringMessage(fmt.Sprintf("retry%d", i))); err != nil {
			t.Fatalf("Send after restart: %v", err)
		}
		select {
		case m := <-got:
			if !strings.HasPrefix(m.StringPart(0), "retry") {
				t.Errorf("got %q", m.StringPart(0))
			}
			return
		case <-time.After(100 * time.Millisecond):
		}
		if sendCtx.Err() != nil {
			t.Fatal("push never reconnected")
		}
	}
}

func TestCallerAddressAndRemoteErrorText(t *testing.T) {
	nw := testNet()
	caller := DialCaller(nw.Host("phone"), "desktop:42")
	defer caller.Close()
	if caller.Address() != "desktop:42" {
		t.Errorf("Address = %q", caller.Address())
	}
	e := &RemoteError{Msg: "boom"}
	if !strings.Contains(e.Error(), "boom") {
		t.Errorf("RemoteError.Error = %q", e.Error())
	}
}
