package wire

import (
	"fmt"
	"net"
	"strconv"
)

// Transport abstracts the byte-stream fabric a socket runs over. The netsim
// package's *Host satisfies it for simulated networks; TCPTransport provides
// the real thing.
type Transport interface {
	// Listen binds a listener on the local device. Port 0 requests an
	// ephemeral port; the chosen port is available from the listener's Addr.
	Listen(port int) (net.Listener, error)
	// Dial connects to a remote "host:port" address.
	Dial(address string) (net.Conn, error)
}

// TCPTransport is the real-network transport, for deployments outside the
// simulator.
type TCPTransport struct {
	// Interface restricts listening to one local interface; empty means all.
	Interface string
}

var _ Transport = TCPTransport{}

// Listen binds a real TCP listener.
func (t TCPTransport) Listen(port int) (net.Listener, error) {
	addr := net.JoinHostPort(t.Interface, strconv.Itoa(port))
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("wire: tcp listen %s: %w", addr, err)
	}
	return l, nil
}

// Dial connects over real TCP.
func (t TCPTransport) Dial(address string) (net.Conn, error) {
	conn, err := net.Dial("tcp", address)
	if err != nil {
		return nil, fmt.Errorf("wire: tcp dial %s: %w", address, err)
	}
	return conn, nil
}
