package videopipe_test

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"videopipe"
)

// TestShapeGoldenConfigs drives the pipeline-level half of the shape
// corpus: each internal/script/testdata/shapes/*.cfg declares on its first
// line exactly which pipetype edge-contract findings the analyzer must
// report, positioned per module — `# expect: sink:PV015@3 streamer:PV017@1`
// or `# expect: none`. Lines count within each module's source (so within
// the include()d file for included modules).
func TestShapeGoldenConfigs(t *testing.T) {
	dir := filepath.Join("internal", "script", "testdata", "shapes")
	files, err := filepath.Glob(filepath.Join(dir, "*.cfg"))
	if err != nil {
		t.Fatal(err)
	}
	if len(files) < 7 {
		t.Fatalf("config shape corpus too small: %d files", len(files))
	}
	shapeCodes := map[string]bool{"PV015": true, "PV016": true, "PV017": true, "PV018": true}
	for _, file := range files {
		t.Run(filepath.Base(file), func(t *testing.T) {
			data, err := os.ReadFile(file)
			if err != nil {
				t.Fatal(err)
			}
			text := string(data)
			first, _, _ := strings.Cut(text, "\n")
			spec, ok := strings.CutPrefix(strings.TrimSpace(first), "# expect:")
			if !ok {
				t.Fatalf("first line must be a `# expect:` header, got %q", first)
			}
			want := map[string]bool{}
			for _, entry := range strings.Fields(spec) {
				if entry != "none" {
					want[entry] = true
				}
			}

			name := strings.TrimSuffix(filepath.Base(file), filepath.Ext(file))
			cfg, err := videopipe.ParseConfig(name, text, videopipe.FileResolver(dir))
			if err != nil {
				t.Fatalf("ParseConfig: %v", err)
			}
			got := map[string]bool{}
			for _, d := range videopipe.AnalyzePipeline(cfg) {
				if shapeCodes[d.Code] {
					got[fmt.Sprintf("%s:%s@%d", d.Module, d.Code, d.Pos.Line)] = true
					if d.Pos.Line == 0 {
						t.Errorf("%s finding lost its position: %+v", d.Code, d)
					}
				}
			}
			for entry := range want {
				if !got[entry] {
					t.Errorf("expected %s, not reported; got %v", entry, keys(got))
				}
			}
			for entry := range got {
				if !want[entry] {
					t.Errorf("unexpected %s; want %v", entry, keys(want))
				}
			}
		})
	}
}

func keys(set map[string]bool) []string {
	out := make([]string, 0, len(set))
	for k := range set {
		out = append(out, k)
	}
	return out
}
