package videopipe_test

import (
	"testing"

	"videopipe"
	"videopipe/internal/script"
)

// Soundness golden test for pipetype: for every PipeScript module we ship,
// the statically inferred payload shape for each call_module target must
// contain (in the lattice sense) every payload the module actually emits
// while running over a varied event stream. The runtime observation is the
// ground truth; a failure here means the shape inference under-approximates
// some construct and PV015/PV016 could reject working pipelines.

// shapeObservingStub is soundnessStub with call_module rebound to record
// the shape of every emitted payload, joined per literal target. A missing
// or nil payload is recorded as the empty object, matching the empty body
// the runtime delivers for one-argument calls.
func shapeObservingStub(ctx *script.Context, rec *script.ShapeRecorder) {
	soundnessStub(ctx)
	ctx.Bind("call_module", func(args []script.Value) (script.Value, error) {
		if len(args) == 0 {
			return nil, nil
		}
		target, ok := args[0].(string)
		if !ok {
			return nil, nil
		}
		var payload script.Value = script.NewObject()
		if len(args) >= 2 && args[1] != nil {
			payload = args[1]
		}
		rec.Observe(target, payload)
		return nil, nil
	})
}

// TestShapeSoundnessOnExamples drives every shipped module through the
// same varied event stream the cost soundness test uses and asserts
// inferred ⊇ observed for each emission target.
func TestShapeSoundnessOnExamples(t *testing.T) {
	for where, src := range collectSoundnessModules(t) {
		t.Run(where, func(t *testing.T) {
			rep := videopipe.AnalyzeShapes(src)

			rec := script.NewShapeRecorder()
			ctx := script.NewContext()
			shapeObservingStub(ctx, rec)
			if err := ctx.Load(src); err != nil {
				t.Fatalf("load: %v", err)
			}
			if ctx.Has("init") {
				if _, err := ctx.Call("init"); err != nil {
					t.Fatalf("init: %v", err)
				}
			}
			for seq := 0; seq < 30; seq++ {
				if _, err := ctx.Call("event_received", soundnessMessage(seq)); err != nil {
					t.Fatalf("event %d: %v", seq, err)
				}
			}

			for _, target := range rec.Edges() {
				observed := rec.Shape(target)
				inferred := rep.Emits[target].Join(rep.DynamicEmit)
				if inferred == nil {
					t.Errorf("target %q: runtime emitted %s but inference saw no emission",
						target, observed)
					continue
				}
				if !inferred.Contains(observed) {
					t.Errorf("target %q: inferred shape %s does not contain observed %s",
						target, inferred, observed)
				}
			}
		})
	}
}
