// Package videopipe is a from-scratch reproduction of "VideoPipe: Building
// Video Stream Processing Pipelines at the Edge" (Salehe et al., Middleware
// Industry '19): a FaaS-container hybrid runtime that runs video-processing
// pipelines across heterogeneous home edge devices.
//
// Applications are DAGs of lightweight modules written in PipeScript (a
// JavaScript-like embedded language standing in for the paper's Duktape
// engine) that call stateless, container-style services — pose detection,
// activity recognition, rep counting, object detection, classification,
// display — for the heavy per-frame analytics. The deployment planner
// co-locates each module with the services it calls, eliminating remote
// API round-trips; frames travel between modules by reference id on a
// device and as compressed payloads across devices; and a queue-free,
// source-signalled flow-control protocol pushes all frame dropping to the
// camera.
//
// # Quick start
//
//	reg, _ := videopipe.NewStandardServices(videopipe.DefaultServiceOptions())
//	cluster, _ := videopipe.NewCluster(videopipe.HomeClusterSpec(), reg)
//	defer cluster.Close()
//
//	cfg := videopipe.FitnessApp("fitness", 20, "squat")
//	pipeline, _ := cluster.Launch(cfg, videopipe.CoLocatePlanner{})
//	result, _ := pipeline.Run(context.Background(), 5*time.Second)
//	fmt.Println(result)
//
// Or build a custom pipeline with the builder:
//
//	cfg, err := videopipe.NewPipelineBuilder("watch").
//		Module("ingest", ingestSrc).Next("analyze").
//		Module("analyze", analyzeSrc).Uses("pose_detector").
//		Source("phone", "ingest").FPS(15).Resolution(480, 360).
//		Scene("wave", 0.4).
//		Build()
//
// See DESIGN.md for the system inventory and EXPERIMENTS.md for the
// paper-reproduction results.
package videopipe

import (
	"videopipe/internal/apps"
	"videopipe/internal/core"
	"videopipe/internal/device"
	"videopipe/internal/netsim"
	"videopipe/internal/script"
	"videopipe/internal/services"
)

// Core pipeline types.
type (
	// PipelineConfig describes an application: its module DAG and source.
	PipelineConfig = core.PipelineConfig
	// ModuleConfig describes one module of the DAG.
	ModuleConfig = core.ModuleConfig
	// SourceConfig describes the camera end of a pipeline.
	SourceConfig = core.SourceConfig
	// Pipeline is a deployed, runnable application.
	Pipeline = core.Pipeline
	// RunResult summarizes a pipeline run: FPS, drops, stage latencies.
	RunResult = core.RunResult

	// Cluster is a set of simulated edge devices with deployed services.
	Cluster = core.Cluster
	// ClusterSpec assembles devices, links and service placements.
	ClusterSpec = core.ClusterSpec
	// ServicePlacement puts one service pool on one device.
	ServicePlacement = core.ServicePlacement
	// DeviceConfig describes one edge device.
	DeviceConfig = device.Config

	// Planner decides module placement.
	Planner = core.Planner
	// CoLocatePlanner is VideoPipe's placement: modules live beside the
	// services they call, with pipelined (2-credit) flow control.
	CoLocatePlanner = core.CoLocatePlanner
	// BaselinePlanner is the EdgeEye-style comparison: all modules on one
	// device making synchronous remote API calls.
	BaselinePlanner = core.BaselinePlanner
	// PinnedPlanner follows explicit per-module device pins.
	PinnedPlanner = core.PinnedPlanner
	// LatencyAwarePlanner places modules by minimizing a per-frame latency
	// estimate from the cluster's link profiles (the paper's "scheduling"
	// future work).
	LatencyAwarePlanner = core.LatencyAwarePlanner
	// CostAwarePlanner weights serviceless-module placement and credit
	// selection by the pipecost static worst-case handler costs.
	CostAwarePlanner = core.CostAwarePlanner

	// Monitor observes pipelines and services: progress, stalls, module
	// errors, pool utilization (the paper's "monitoring" future work).
	Monitor = core.Monitor
	// Report is one monitoring observation.
	Report = core.Report

	// Diagnostic is one pipevet static-analysis finding.
	Diagnostic = core.Diagnostic
	// AnalysisError carries the error-severity diagnostics that made
	// Build or Launch reject a pipeline.
	AnalysisError = core.AnalysisError
	// Severity ranks analyzer diagnostics (errors reject, warnings log).
	Severity = script.Severity
	// CostReport is the pipecost result for one module: sound worst-case
	// instruction and allocation bounds per event handler.
	CostReport = script.CostReport
	// HandlerCost is one entry of a CostReport.
	HandlerCost = script.HandlerCost
	// Shape is one point of the pipetype event-shape lattice.
	Shape = script.Shape
	// ShapeReport is the pipetype result for one module: produced payload
	// shapes per call_module target and the consumed shape of
	// event_received.
	ShapeReport = script.ShapeReport
	// ShapeRecorder accumulates observed payload shapes per DAG edge
	// (debug-mode runtime validation of the static inference).
	ShapeRecorder = script.ShapeRecorder

	// ServiceRegistry catalogues deployable services.
	ServiceRegistry = services.Registry
	// ServiceOptions calibrates the standard services' simulated costs.
	ServiceOptions = services.StandardOptions

	// LinkProfile shapes a simulated network link.
	LinkProfile = netsim.LinkProfile
)

// Device classes.
const (
	Phone   = device.Phone
	Desktop = device.Desktop
	TV      = device.TV
	Laptop  = device.Laptop
	Watch   = device.Watch
	Fridge  = device.Fridge
)

// Diagnostic severities.
const (
	SeverityWarning = script.SeverityWarning
	SeverityError   = script.SeverityError
)

// Standard service names (paper §2.2's service catalogue).
const (
	PoseDetector       = services.PoseDetector
	ActivityClassifier = services.ActivityClassifier
	RepCounter         = services.RepCounter
	Display            = services.Display
	ObjectDetector     = services.ObjectDetector
	ImageClassifier    = services.ImageClassifier
	FaceDetector       = services.FaceDetector
	FallDetector       = services.FallDetector
)

// Link presets.
var (
	// WiFiLink models the paper's home 802.11 fabric.
	WiFiLink = netsim.WiFi
	// EthernetLink models a wired home segment.
	EthernetLink = netsim.Ethernet
	// WANLink models an uplink to a nearby cloud region.
	WANLink = netsim.WAN
)

// NewCluster builds a simulated home deployment: devices on a shaped
// network with services deployed per the spec.
func NewCluster(spec ClusterSpec, registry *ServiceRegistry) (*Cluster, error) {
	return core.NewCluster(spec, registry)
}

// NewStandardServices builds the paper's predefined service catalogue,
// training the activity classifier on a synthetic labelled corpus.
func NewStandardServices(opts ServiceOptions) (*ServiceRegistry, error) {
	return services.NewStandardRegistry(opts)
}

// DefaultServiceOptions returns the calibration used by the paper
// reproduction: pose detection ≈ 85 ms per frame on the reference desktop,
// matching the paper's ≈ 11 FPS pipeline ceiling.
func DefaultServiceOptions() ServiceOptions { return services.DefaultOptions() }

// ParseConfig parses a pipeline configuration in the paper's Listing-1
// dialect. resolve loads include()d module files; use FileResolver for
// on-disk configs.
func ParseConfig(name, text string, resolve core.Resolver) (*PipelineConfig, error) {
	return core.ParseConfig(name, text, resolve)
}

// FileResolver resolves config include() paths relative to dir.
func FileResolver(dir string) core.Resolver { return core.FileResolver(dir) }

// ParseClusterSpecText extracts the optional devices/services deployment
// sections from a configuration text; found is false when the config
// declares no deployment.
func ParseClusterSpecText(text string) (spec ClusterSpec, found bool, err error) {
	return core.ParseClusterSpec(text)
}

// HomeClusterSpec is the paper's testbed (§5.1): phone + desktop + TV on
// home Wi-Fi, vision services on the desktop, display service on the TV.
func HomeClusterSpec() ClusterSpec { return apps.HomeClusterSpec() }

// BaselineClusterSpec mirrors the paper's baseline (Fig. 5): same devices,
// all services on the desktop server.
func BaselineClusterSpec() ClusterSpec { return apps.BaselineClusterSpec() }

// FitnessApp builds the paper's fitness application (§4.1, Fig. 4): pose
// detection → activity recognition → rep counting → TV display. scene
// names the exercise the synthetic subject performs (squat, jumping_jack,
// overhead_press, lunge).
func FitnessApp(name string, fps float64, scene string) PipelineConfig {
	return apps.FitnessConfig(name, fps, scene)
}

// GestureApp builds the gesture-controlled IoT application (§4.2):
// clapping toggles a light, waving toggles a doorbell camera. scene is
// "clap" or "wave".
func GestureApp(name string, fps float64, scene string) PipelineConfig {
	return apps.GestureConfig(name, fps, scene)
}

// FallApp builds the fall-detection application (§4.3).
func FallApp(name string, fps float64) PipelineConfig {
	return apps.FallConfig(name, fps)
}

// NewMonitor creates a cluster monitor: pipeline progress and stall
// detection, module error counts, service-pool utilization, and optional
// autoscaling of saturated services.
func NewMonitor(c *Cluster) *Monitor { return core.NewMonitor(c) }

// AnalyzePipeline runs the pipevet static analyzer over every module of a
// pipeline: script-level checks (undefined identifiers, use before
// declaration, bad host-API calls, ...) plus config cross-checks (literal
// call_service/call_module targets vs declared services and edges, missing
// event_received on reachable modules). Launch and Build reject pipelines
// whose diagnostics include errors; this entry point exposes the full list,
// warnings included, for tooling such as `videopipe -lint`.
func AnalyzePipeline(cfg *PipelineConfig) []Diagnostic { return core.AnalyzePipeline(cfg) }

// AnalyzeScript runs only the script-level pipevet checks over a single
// PipeScript module source, without pipeline cross-checks.
func AnalyzeScript(src string) []Diagnostic { return core.AnalyzeModuleSource(src) }

// AnalyzeCost runs only the pipecost static cost analysis over a single
// PipeScript module source: a sound worst-case instruction bound and
// allocation bound per event handler, validated against the interpreter's
// per-event instruction counter (the `script.<module>.instructions`
// meter).
func AnalyzeCost(src string) CostReport { return script.AnalyzeCost(src) }

// AnalyzeShapes runs only the pipetype event-shape inference over a single
// PipeScript module source: the payload shape emitted to each call_module
// target and the fields (with expected kinds) its event_received handler
// reads. Pipeline Build/Launch cross-check these along every DAG edge
// (PV015–PV017); this entry point exposes one module's report for tooling.
func AnalyzeShapes(src string) ShapeReport { return script.AnalyzeShapes(src) }
