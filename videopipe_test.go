package videopipe_test

import (
	"context"
	"strings"
	"sync"
	"testing"
	"time"

	"videopipe"
	"videopipe/internal/services"
	"videopipe/internal/vision"
)

// testServices builds a fast-calibrated registry shared by the public API
// tests.
var (
	svcOnce sync.Once
	svcReg  *videopipe.ServiceRegistry
	svcErr  error
)

func testServices(t *testing.T) *videopipe.ServiceRegistry {
	t.Helper()
	svcOnce.Do(func() {
		opts := videopipe.DefaultServiceOptions()
		opts.PoseCost = 10 * time.Millisecond
		opts.ActivityCost = 2 * time.Millisecond
		opts.RepCost = time.Millisecond
		opts.DisplayCost = time.Millisecond
		opts.FallCost = time.Millisecond
		cfg := vision.DefaultDatasetConfig()
		cfg.SequencesPerActivity = 6
		cfg.FramesPerSequence = 45
		opts.DatasetConfig = cfg
		svcReg, svcErr = videopipe.NewStandardServices(opts)
	})
	if svcErr != nil {
		t.Fatalf("NewStandardServices: %v", svcErr)
	}
	return svcReg
}

func TestPublicQuickstartFlow(t *testing.T) {
	cluster, err := videopipe.NewCluster(videopipe.HomeClusterSpec(), testServices(t))
	if err != nil {
		t.Fatalf("NewCluster: %v", err)
	}
	defer cluster.Close()

	cfg := videopipe.FitnessApp("pub", 15, "squat")
	pipeline, err := cluster.Launch(cfg, videopipe.CoLocatePlanner{})
	if err != nil {
		t.Fatalf("Launch: %v", err)
	}
	result, err := pipeline.Run(context.Background(), 1500*time.Millisecond)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if result.Delivered == 0 {
		t.Error("pipeline delivered nothing")
	}
	if result.Pipeline != "pub" || result.Planner != "videopipe" {
		t.Errorf("result identity: %q / %q", result.Pipeline, result.Planner)
	}
}

func TestPublicAppsValidate(t *testing.T) {
	apps := []videopipe.PipelineConfig{
		videopipe.FitnessApp("f", 20, "squat"),
		videopipe.GestureApp("g", 15, "clap"),
		videopipe.FallApp("fa", 15),
	}
	for _, cfg := range apps {
		if err := cfg.Validate(); err != nil {
			t.Errorf("%s: %v", cfg.Name, err)
		}
	}
}

func TestPublicServiceNames(t *testing.T) {
	reg := testServices(t)
	for _, name := range []string{
		videopipe.PoseDetector, videopipe.ActivityClassifier, videopipe.RepCounter,
		videopipe.Display, videopipe.ObjectDetector, videopipe.ImageClassifier,
		videopipe.FaceDetector, videopipe.FallDetector,
	} {
		if _, err := reg.Lookup(name); err != nil {
			t.Errorf("standard service %q missing: %v", name, err)
		}
	}
}

func TestPublicParseConfig(t *testing.T) {
	text := `
	modules: [ { name: only, source: "function event_received(m) { frame_done(); }" } ]
	source: { device: phone, module: only, fps: 10, width: 64, height: 48 }
	`
	cfg, err := videopipe.ParseConfig("p", text, nil)
	if err != nil {
		t.Fatalf("ParseConfig: %v", err)
	}
	if err := cfg.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
}

func TestBuilderHappyPath(t *testing.T) {
	cfg, err := videopipe.NewPipelineBuilder("built").
		Module("a", "function event_received(m) { call_module('b', m); }").Next("b").
		Module("b", "function event_received(m) { frame_done(); }").
		Uses(videopipe.PoseDetector).
		On("desktop").
		Endpoint("bind#tcp://*:7777").
		Source("phone", "a").
		FPS(12).
		Resolution(320, 240).
		Scene("wave", 0.4).
		Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if cfg.Name != "built" || len(cfg.Modules) != 2 {
		t.Errorf("cfg = %+v", cfg)
	}
	if cfg.Modules[1].Device != "desktop" {
		t.Errorf("On not applied: %+v", cfg.Modules[1])
	}
	if cfg.Modules[1].Endpoint.Port != 7777 {
		t.Errorf("Endpoint not applied: %+v", cfg.Modules[1].Endpoint)
	}
	if cfg.Source.FPS != 12 || cfg.Source.Width != 320 {
		t.Errorf("source = %+v", cfg.Source)
	}
}

func TestBuilderDefaults(t *testing.T) {
	cfg, err := videopipe.NewPipelineBuilder("d").
		Module("m", "function event_received(x) {}").
		Source("phone", "m").
		Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if cfg.Source.Width != 480 || cfg.Source.Height != 360 || cfg.Source.FPS != 15 {
		t.Errorf("defaults not applied: %+v", cfg.Source)
	}
}

func TestBuilderErrors(t *testing.T) {
	// Uses before Module.
	_, err := videopipe.NewPipelineBuilder("e").Uses("x").Build()
	if err == nil || !strings.Contains(err.Error(), "before any Module") {
		t.Errorf("Uses before Module: %v", err)
	}
	// Bad endpoint.
	_, err = videopipe.NewPipelineBuilder("e").
		Module("m", "x").Endpoint("garbage").Build()
	if err == nil {
		t.Error("bad endpoint accepted")
	}
	// Validation failure surfaces.
	_, err = videopipe.NewPipelineBuilder("e").
		Module("m", "x").Next("ghost").
		Source("phone", "m").Build()
	if err == nil {
		t.Error("unknown next accepted")
	}
	// Next/On/Endpoint before Module.
	if _, err := videopipe.NewPipelineBuilder("e").Next("x").Build(); err == nil {
		t.Error("Next before Module accepted")
	}
	if _, err := videopipe.NewPipelineBuilder("e").On("d").Build(); err == nil {
		t.Error("On before Module accepted")
	}
	if _, err := videopipe.NewPipelineBuilder("e").Endpoint("bind#tcp://*:1").Build(); err == nil {
		t.Error("Endpoint before Module accepted")
	}
}

func TestBuilderPipelineRuns(t *testing.T) {
	cluster, err := videopipe.NewCluster(videopipe.HomeClusterSpec(), testServices(t))
	if err != nil {
		t.Fatalf("NewCluster: %v", err)
	}
	defer cluster.Close()

	cfg, err := videopipe.NewPipelineBuilder("builtrun").
		Module("ingest", `function event_received(m) { call_module("sink", {frame_ref: m.frame_ref, captured_ms: m.captured_ms}); }`).
		Next("sink").
		Module("sink", `function event_received(m) { metric("sunk", 1); frame_done(); }`).
		Source("phone", "ingest").
		FPS(20).
		Scene("idle", 0.3).
		Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	p, err := cluster.Launch(cfg, videopipe.CoLocatePlanner{})
	if err != nil {
		t.Fatalf("Launch: %v", err)
	}
	res, err := p.Run(context.Background(), time.Second)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Stages["sunk"].Count == 0 {
		t.Error("built pipeline processed nothing")
	}
}

func TestClusterSpecsDifferOnDisplay(t *testing.T) {
	home := videopipe.HomeClusterSpec()
	base := videopipe.BaselineClusterSpec()
	displayHost := func(spec videopipe.ClusterSpec) string {
		for _, sp := range spec.Services {
			if sp.Service == services.Display {
				return sp.Device
			}
		}
		return ""
	}
	if displayHost(home) != "tv" {
		t.Errorf("home display on %q, want tv", displayHost(home))
	}
	if displayHost(base) != "desktop" {
		t.Errorf("baseline display on %q, want desktop", displayHost(base))
	}
}
